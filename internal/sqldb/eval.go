package sqldb

import (
	"fmt"
	"math"
	"strings"
)

// scopeCol names one column visible in a row scope.
type scopeCol struct {
	table string // source alias, lower-cased; may be ""
	name  string // column name, lower-cased
}

// rowScope is the name-resolution environment for expression evaluation.
// parent chains to outer queries for correlated subqueries. group is set
// while evaluating select/having expressions of an aggregated query.
type rowScope struct {
	cols    []scopeCol
	row     []Value
	parent  *rowScope
	grouped bool      // true while evaluating aggregate-context expressions
	group   [][]Value // the group's source rows (may be empty)
}

// lookup resolves a column reference in this scope only. It returns the
// column index or -1, and an error on ambiguity.
func (s *rowScope) lookup(table, name string) (int, error) {
	found := -1
	for i, c := range s.cols {
		if c.name != name {
			continue
		}
		if table != "" && c.table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("sqldb: ambiguous column %q", name)
		}
		found = i
	}
	return found, nil
}

// evaluator executes expressions and queries against a fixed set of tables
// and views — either a DB's live maps (whose lock the caller holds) or a
// snapshot's frozen clones.
type evaluator struct {
	tables map[string]*Table
	views  map[string]*View
	params []Value
	// indexing enables the hash-index planner (equality WHERE probes and
	// hash equi-joins); see index.go.
	indexing bool
	// subq caches subquery results keyed by free-variable bindings; see
	// subqcache.go. nocache disables it for statements that mutate rows
	// they may re-read (UPDATE).
	subq    map[*SelectStmt]*subqInfo
	nocache bool
}

func (ev *evaluator) param(i int) (Value, error) {
	if i >= len(ev.params) {
		return Null(), fmt.Errorf("sqldb: missing parameter %d (have %d)", i+1, len(ev.params))
	}
	return ev.params[i], nil
}

// aggregate function names.
func isAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "TOTAL", "GROUP_CONCAT":
		return true
	}
	return false
}

// hasAggregate reports whether the expression contains an aggregate call at
// this query level (subqueries own their aggregates).
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *FuncCall:
		if isAggregateName(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case *Unary:
		return hasAggregate(x.X)
	case *Binary:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *IsNullExpr:
		return hasAggregate(x.X)
	case *BetweenExpr:
		return hasAggregate(x.X) || hasAggregate(x.Lo) || hasAggregate(x.Hi)
	case *LikeExpr:
		return hasAggregate(x.X) || hasAggregate(x.Pattern)
	case *InExpr:
		if hasAggregate(x.X) {
			return true
		}
		for _, le := range x.List {
			if hasAggregate(le) {
				return true
			}
		}
	case *CaseExpr:
		if hasAggregate(x.Operand) || hasAggregate(x.Else) {
			return true
		}
		for _, w := range x.Whens {
			if hasAggregate(w.Cond) || hasAggregate(w.Result) {
				return true
			}
		}
	case *CastExpr:
		return hasAggregate(x.X)
	}
	return false
}

// eval computes an expression in the given scope (nil for constant
// expressions).
func (ev *evaluator) eval(e Expr, s *rowScope) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil

	case *ParamExpr:
		return ev.param(x.Index)

	case *ColExpr:
		table := strings.ToLower(x.Table)
		name := strings.ToLower(x.Name)
		for sc := s; sc != nil; sc = sc.parent {
			idx, err := sc.lookup(table, name)
			if err != nil {
				return Null(), err
			}
			if idx >= 0 {
				return sc.row[idx], nil
			}
		}
		if x.Table != "" {
			return Null(), fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, x.Table, x.Name)
		}
		return Null(), fmt.Errorf("%w: %s", ErrNoSuchColumn, x.Name)

	case *Unary:
		v, err := ev.eval(x.X, s)
		if err != nil {
			return Null(), err
		}
		switch x.Op {
		case "-":
			switch v.kind {
			case KindNull:
				return Null(), nil
			case KindFloat:
				return Float(-v.f), nil
			default:
				return Int(-v.Int64()), nil
			}
		case "NOT":
			truth, known := v.Truth()
			if !known {
				return Null(), nil
			}
			return Bool(!truth), nil
		}
		return Null(), fmt.Errorf("sqldb: unknown unary operator %q", x.Op)

	case *Binary:
		return ev.evalBinary(x, s)

	case *FuncCall:
		return ev.evalFunc(x, s)

	case *SubqueryExpr:
		res, err := ev.execSelectCached(x.Select, s)
		if err != nil {
			return Null(), err
		}
		if len(res.Rows) == 0 {
			return Null(), nil
		}
		if len(res.Rows[0]) == 0 {
			return Null(), nil
		}
		return res.Rows[0][0], nil

	case *InExpr:
		return ev.evalIn(x, s)

	case *ExistsExpr:
		res, err := ev.execSelectCached(x.Select, s)
		if err != nil {
			return Null(), err
		}
		return Bool(x.Not != (len(res.Rows) > 0)), nil

	case *IsNullExpr:
		v, err := ev.eval(x.X, s)
		if err != nil {
			return Null(), err
		}
		return Bool(x.Not != v.IsNull()), nil

	case *BetweenExpr:
		v, err := ev.eval(x.X, s)
		if err != nil {
			return Null(), err
		}
		lo, err := ev.eval(x.Lo, s)
		if err != nil {
			return Null(), err
		}
		hi, err := ev.eval(x.Hi, s)
		if err != nil {
			return Null(), err
		}
		c1, ok1 := CompareSQL(v, lo)
		c2, ok2 := CompareSQL(v, hi)
		if !ok1 || !ok2 {
			return Null(), nil
		}
		return Bool(x.Not != (c1 >= 0 && c2 <= 0)), nil

	case *LikeExpr:
		v, err := ev.eval(x.X, s)
		if err != nil {
			return Null(), err
		}
		pat, err := ev.eval(x.Pattern, s)
		if err != nil {
			return Null(), err
		}
		if v.IsNull() || pat.IsNull() {
			return Null(), nil
		}
		return Bool(x.Not != x.program(pat.TextVal()).match(v.TextVal())), nil

	case *CaseExpr:
		if x.Operand != nil {
			op, err := ev.eval(x.Operand, s)
			if err != nil {
				return Null(), err
			}
			for _, w := range x.Whens {
				cv, err := ev.eval(w.Cond, s)
				if err != nil {
					return Null(), err
				}
				if cmp, ok := CompareSQL(op, cv); ok && cmp == 0 {
					return ev.eval(w.Result, s)
				}
			}
		} else {
			for _, w := range x.Whens {
				cv, err := ev.eval(w.Cond, s)
				if err != nil {
					return Null(), err
				}
				if truth, _ := cv.Truth(); truth {
					return ev.eval(w.Result, s)
				}
			}
		}
		if x.Else != nil {
			return ev.eval(x.Else, s)
		}
		return Null(), nil

	case *CastExpr:
		v, err := ev.eval(x.X, s)
		if err != nil {
			return Null(), err
		}
		return castValue(v, x.Type), nil
	}
	return Null(), fmt.Errorf("sqldb: cannot evaluate %T", e)
}

func castValue(v Value, t Kind) Value {
	if v.IsNull() {
		return v
	}
	switch t {
	case KindInt:
		return Int(v.Int64())
	case KindFloat:
		return Float(v.Float64())
	case KindText:
		return Text(v.TextVal())
	case KindBlob:
		if v.kind == KindBlob {
			return v
		}
		return Blob([]byte(v.TextVal()))
	}
	return v
}

func (ev *evaluator) evalBinary(x *Binary, s *rowScope) (Value, error) {
	// AND/OR get short-circuit three-valued logic.
	switch x.Op {
	case "AND":
		lv, err := ev.eval(x.L, s)
		if err != nil {
			return Null(), err
		}
		lt, lk := lv.Truth()
		if lk && !lt {
			return Bool(false), nil
		}
		rv, err := ev.eval(x.R, s)
		if err != nil {
			return Null(), err
		}
		rt, rk := rv.Truth()
		if rk && !rt {
			return Bool(false), nil
		}
		if !lk || !rk {
			return Null(), nil
		}
		return Bool(true), nil
	case "OR":
		lv, err := ev.eval(x.L, s)
		if err != nil {
			return Null(), err
		}
		lt, lk := lv.Truth()
		if lk && lt {
			return Bool(true), nil
		}
		rv, err := ev.eval(x.R, s)
		if err != nil {
			return Null(), err
		}
		rt, rk := rv.Truth()
		if rk && rt {
			return Bool(true), nil
		}
		if !lk || !rk {
			return Null(), nil
		}
		return Bool(false), nil
	}

	lv, err := ev.eval(x.L, s)
	if err != nil {
		return Null(), err
	}
	rv, err := ev.eval(x.R, s)
	if err != nil {
		return Null(), err
	}
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		cmp, ok := CompareSQL(lv, rv)
		if !ok {
			return Null(), nil
		}
		switch x.Op {
		case "=":
			return Bool(cmp == 0), nil
		case "!=":
			return Bool(cmp != 0), nil
		case "<":
			return Bool(cmp < 0), nil
		case "<=":
			return Bool(cmp <= 0), nil
		case ">":
			return Bool(cmp > 0), nil
		case ">=":
			return Bool(cmp >= 0), nil
		}
	case "||":
		if lv.IsNull() || rv.IsNull() {
			return Null(), nil
		}
		return Text(lv.TextVal() + rv.TextVal()), nil
	case "+", "-", "*", "/", "%":
		if lv.IsNull() || rv.IsNull() {
			return Null(), nil
		}
		if lv.kind == KindFloat || rv.kind == KindFloat || x.Op == "/" && isDivFloat(lv, rv) {
			lf, rf := lv.Float64(), rv.Float64()
			switch x.Op {
			case "+":
				return Float(lf + rf), nil
			case "-":
				return Float(lf - rf), nil
			case "*":
				return Float(lf * rf), nil
			case "/":
				if rf == 0 {
					return Null(), nil
				}
				return Float(lf / rf), nil
			case "%":
				if rf == 0 {
					return Null(), nil
				}
				return Float(math.Mod(lf, rf)), nil
			}
		}
		li, ri := lv.Int64(), rv.Int64()
		switch x.Op {
		case "+":
			return Int(li + ri), nil
		case "-":
			return Int(li - ri), nil
		case "*":
			return Int(li * ri), nil
		case "/":
			if ri == 0 {
				return Null(), nil
			}
			return Int(li / ri), nil
		case "%":
			if ri == 0 {
				return Null(), nil
			}
			return Int(li % ri), nil
		}
	}
	return Null(), fmt.Errorf("sqldb: unknown operator %q", x.Op)
}

// isDivFloat reports whether integer division would lose a remainder;
// SQLite keeps integer division, so this always returns false, but the hook
// keeps the semantics decision in one place.
func isDivFloat(_, _ Value) bool { return false }

func (ev *evaluator) evalIn(x *InExpr, s *rowScope) (Value, error) {
	v, err := ev.eval(x.X, s)
	if err != nil {
		return Null(), err
	}
	var candidates []Value
	if x.Select != nil {
		res, err := ev.execSelectCached(x.Select, s)
		if err != nil {
			return Null(), err
		}
		for _, row := range res.Rows {
			if len(row) != 1 {
				return Null(), fmt.Errorf("sqldb: IN subquery must return one column, got %d", len(row))
			}
			candidates = append(candidates, row[0])
		}
	} else {
		for _, le := range x.List {
			cv, err := ev.eval(le, s)
			if err != nil {
				return Null(), err
			}
			candidates = append(candidates, cv)
		}
	}
	if v.IsNull() {
		return Null(), nil
	}
	sawNull := false
	for _, cv := range candidates {
		cmp, ok := CompareSQL(v, cv)
		if !ok {
			sawNull = true
			continue
		}
		if cmp == 0 {
			return Bool(!x.Not), nil
		}
	}
	if sawNull {
		return Null(), nil // unknown: value may equal the NULL member
	}
	return Bool(x.Not), nil
}

// evalFunc handles both scalar functions and (when the scope carries a
// group) aggregate functions.
func (ev *evaluator) evalFunc(x *FuncCall, s *rowScope) (Value, error) {
	if isAggregateName(x.Name) {
		return ev.evalAggregate(x, s)
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ev.eval(a, s)
		if err != nil {
			return Null(), err
		}
		args[i] = v
	}
	switch x.Name {
	case "LENGTH":
		if len(args) != 1 {
			return Null(), fmt.Errorf("sqldb: LENGTH takes 1 argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		if args[0].kind == KindBlob {
			return Int(int64(len(args[0].b))), nil
		}
		return Int(int64(len(args[0].TextVal()))), nil
	case "ABS":
		if len(args) != 1 {
			return Null(), fmt.Errorf("sqldb: ABS takes 1 argument")
		}
		v := args[0]
		switch v.kind {
		case KindNull:
			return Null(), nil
		case KindFloat:
			return Float(math.Abs(v.f)), nil
		default:
			n := v.Int64()
			if n < 0 {
				n = -n
			}
			return Int(n), nil
		}
	case "UPPER":
		if len(args) != 1 || args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToUpper(args[0].TextVal())), nil
	case "LOWER":
		if len(args) != 1 || args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToLower(args[0].TextVal())), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil
	case "IFNULL":
		if len(args) != 2 {
			return Null(), fmt.Errorf("sqldb: IFNULL takes 2 arguments")
		}
		if args[0].IsNull() {
			return args[1], nil
		}
		return args[0], nil
	case "NULLIF":
		if len(args) != 2 {
			return Null(), fmt.Errorf("sqldb: NULLIF takes 2 arguments")
		}
		if cmp, ok := CompareSQL(args[0], args[1]); ok && cmp == 0 {
			return Null(), nil
		}
		return args[0], nil
	case "SUBSTR":
		if len(args) < 2 || len(args) > 3 {
			return Null(), fmt.Errorf("sqldb: SUBSTR takes 2 or 3 arguments")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		str := args[0].TextVal()
		start := int(args[1].Int64())
		if start > 0 {
			start--
		} else if start < 0 {
			start = len(str) + start
			if start < 0 {
				start = 0
			}
		}
		if start > len(str) {
			return Text(""), nil
		}
		end := len(str)
		if len(args) == 3 {
			n := int(args[2].Int64())
			if n < 0 {
				n = 0
			}
			if start+n < end {
				end = start + n
			}
		}
		return Text(str[start:end]), nil
	case "MIN2", "MAX2":
		return Null(), fmt.Errorf("sqldb: unknown function %s", x.Name)
	}
	return Null(), fmt.Errorf("sqldb: unknown function %s", x.Name)
}

func (ev *evaluator) evalAggregate(x *FuncCall, s *rowScope) (Value, error) {
	// Find the nearest scope carrying a group.
	gs := s
	for gs != nil && !gs.grouped {
		gs = gs.parent
	}
	if gs == nil {
		return Null(), fmt.Errorf("sqldb: aggregate %s used outside aggregation", x.Name)
	}
	// Collect argument values over the group's rows.
	var vals []Value
	if x.Star {
		if x.Name != "COUNT" {
			return Null(), fmt.Errorf("sqldb: %s(*) is not valid", x.Name)
		}
		return Int(int64(len(gs.group))), nil
	}
	if len(x.Args) != 1 {
		return Null(), fmt.Errorf("sqldb: aggregate %s takes 1 argument", x.Name)
	}
	seen := map[string]bool{}
	for _, row := range gs.group {
		rowScope := &rowScope{cols: gs.cols, row: row, parent: gs.parent}
		v, err := ev.eval(x.Args[0], rowScope)
		if err != nil {
			return Null(), err
		}
		if v.IsNull() {
			continue
		}
		if x.Distinct {
			var sb strings.Builder
			v.groupKey(&sb)
			if seen[sb.String()] {
				continue
			}
			seen[sb.String()] = true
		}
		vals = append(vals, v)
	}
	switch x.Name {
	case "COUNT":
		return Int(int64(len(vals))), nil
	case "SUM":
		if len(vals) == 0 {
			return Null(), nil
		}
		return sumValues(vals), nil
	case "TOTAL":
		v := sumValues(vals)
		return Float(v.Float64()), nil
	case "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		sum := sumValues(vals)
		return Float(sum.Float64() / float64(len(vals))), nil
	case "MIN":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if Compare(v, best) < 0 {
				best = v
			}
		}
		return best, nil
	case "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if Compare(v, best) > 0 {
				best = v
			}
		}
		return best, nil
	case "GROUP_CONCAT":
		if len(vals) == 0 {
			return Null(), nil
		}
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = v.TextVal()
		}
		return Text(strings.Join(parts, ",")), nil
	}
	return Null(), fmt.Errorf("sqldb: unknown aggregate %s", x.Name)
}

func sumValues(vals []Value) Value {
	allInt := true
	for _, v := range vals {
		if v.kind == KindFloat {
			allInt = false
			break
		}
	}
	if allInt {
		var sum int64
		for _, v := range vals {
			sum += v.Int64()
		}
		return Int(sum)
	}
	var sum float64
	for _, v := range vals {
		sum += v.Float64()
	}
	return Float(sum)
}

// LIKE pattern compilation. Patterns are almost always literals, so
// interpreting the wildcard grammar per row is wasted work: compileLike
// classifies a pattern once into one of the string-primitive shapes below
// (or the generic recursive matcher) and LikeExpr caches the compiled form
// on the AST node, keyed by the pattern text so computed patterns that vary
// per row recompile and stay correct.

type likeShape int

const (
	likeGeneric  likeShape = iota // has `_` or interior `%`: recursive matcher
	likeExact                     // no wildcards
	likePrefix                    // lit%
	likeSuffix                    // %lit
	likeContains                  // %lit%
)

type likeProgram struct {
	text  string // original pattern text (cache key)
	shape likeShape
	lit   string // lowercased wildcard-free body for the fast shapes
	pat   string // lowercased full pattern for likeGeneric
}

func compileLike(pattern string) *likeProgram {
	p := strings.ToLower(pattern)
	prog := &likeProgram{text: pattern, pat: p}
	if strings.ContainsRune(p, '_') {
		return prog
	}
	lead := strings.HasPrefix(p, "%")
	trail := strings.HasSuffix(p, "%")
	body := strings.Trim(p, "%")
	if strings.ContainsRune(body, '%') {
		return prog
	}
	// Collapsed runs of leading/trailing % are equivalent to one.
	prog.lit = body
	switch {
	case !lead && !trail:
		prog.shape = likeExact
	case !lead && trail:
		prog.shape = likePrefix
	case lead && !trail:
		prog.shape = likeSuffix
	default:
		prog.shape = likeContains
	}
	return prog
}

func (p *likeProgram) match(str string) bool {
	t := strings.ToLower(str)
	switch p.shape {
	case likeExact:
		return t == p.lit
	case likePrefix:
		return strings.HasPrefix(t, p.lit)
	case likeSuffix:
		return strings.HasSuffix(t, p.lit)
	case likeContains:
		return strings.Contains(t, p.lit)
	}
	return likeRec(p.pat, t)
}

// likeMatch implements SQL LIKE with % and _ wildcards, case-insensitively
// for ASCII, as SQLite does.
func likeMatch(pattern, str string) bool {
	return compileLike(pattern).match(str)
}

func likeRec(p, t string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(t); i++ {
				if likeRec(p, t[i:]) {
					return true
				}
			}
			return false
		case '_':
			if len(t) == 0 {
				return false
			}
			p, t = p[1:], t[1:]
		default:
			if len(t) == 0 || p[0] != t[0] {
				return false
			}
			p, t = p[1:], t[1:]
		}
	}
	return len(t) == 0
}
