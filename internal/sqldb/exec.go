package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// execSelect runs a (possibly compound) SELECT. outer is the enclosing row
// scope for correlated subqueries, nil at top level.
func (ev *evaluator) execSelect(st *SelectStmt, outer *rowScope) (*Result, error) {
	if len(st.Compound) == 0 {
		return ev.execCore(st, outer, true)
	}
	left, err := ev.execCore(st, outer, false)
	if err != nil {
		return nil, err
	}
	for _, part := range st.Compound {
		right, err := ev.execCore(part.Select, outer, false)
		if err != nil {
			return nil, err
		}
		if len(right.Columns) != len(left.Columns) {
			return nil, fmt.Errorf("sqldb: compound SELECTs have different column counts (%d vs %d)",
				len(left.Columns), len(right.Columns))
		}
		left.Rows = combineCompound(part.Op, left.Rows, right.Rows)
	}
	if err := ev.orderResultRows(st, left); err != nil {
		return nil, err
	}
	if err := ev.applyLimit(st, left); err != nil {
		return nil, err
	}
	return left, nil
}

func rowKey(row []Value) string {
	var sb strings.Builder
	for _, v := range row {
		v.groupKey(&sb)
	}
	return sb.String()
}

func combineCompound(op CompoundOp, left, right [][]Value) [][]Value {
	switch op {
	case CompoundUnionAll:
		return append(left, right...)
	case CompoundUnion:
		seen := map[string]bool{}
		var out [][]Value
		for _, r := range append(left, right...) {
			k := rowKey(r)
			if !seen[k] {
				seen[k] = true
				out = append(out, r)
			}
		}
		return out
	case CompoundExcept:
		drop := map[string]bool{}
		for _, r := range right {
			drop[rowKey(r)] = true
		}
		seen := map[string]bool{}
		var out [][]Value
		for _, r := range left {
			k := rowKey(r)
			if !drop[k] && !seen[k] {
				seen[k] = true
				out = append(out, r)
			}
		}
		return out
	case CompoundIntersect:
		keep := map[string]bool{}
		for _, r := range right {
			keep[rowKey(r)] = true
		}
		seen := map[string]bool{}
		var out [][]Value
		for _, r := range left {
			k := rowKey(r)
			if keep[k] && !seen[k] {
				seen[k] = true
				out = append(out, r)
			}
		}
		return out
	}
	return left
}

// orderResultRows sorts a compound result; keys may only reference output
// columns by alias/name or 1-based index.
func (ev *evaluator) orderResultRows(st *SelectStmt, res *Result) error {
	if len(st.OrderBy) == 0 {
		return nil
	}
	idxs := make([]int, len(st.OrderBy))
	for i, key := range st.OrderBy {
		switch k := key.Expr.(type) {
		case *ColExpr:
			found := -1
			for ci, name := range res.Columns {
				if strings.EqualFold(name, k.Name) {
					found = ci
					break
				}
			}
			if found < 0 {
				return fmt.Errorf("%w: ORDER BY %s", ErrNoSuchColumn, k.Name)
			}
			idxs[i] = found
		case *Literal:
			n := int(k.Val.Int64())
			if n < 1 || n > len(res.Columns) {
				return fmt.Errorf("sqldb: ORDER BY position %d out of range", n)
			}
			idxs[i] = n - 1
		default:
			return fmt.Errorf("sqldb: compound ORDER BY must use column names or positions")
		}
	}
	// Extract the sort keys once per row; the comparator then touches only
	// the dense key tuples instead of chasing column indices per comparison.
	desc := make([]bool, len(st.OrderBy))
	for i, key := range st.OrderBy {
		desc[i] = key.Desc
	}
	type keyed struct {
		row  []Value
		keys []Value
	}
	ks := make([]keyed, len(res.Rows))
	for ri, row := range res.Rows {
		keys := make([]Value, len(idxs))
		for i, ci := range idxs {
			keys[i] = row[ci]
		}
		ks[ri] = keyed{row: row, keys: keys}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		return lessKeys(ks[a].keys, ks[b].keys, desc)
	})
	for ri := range ks {
		res.Rows[ri] = ks[ri].row
	}
	return nil
}

// lessKeys orders two precomputed sort-key tuples under per-key direction
// flags. It is the single comparator shared by every ORDER BY path.
func lessKeys(a, b []Value, desc []bool) bool {
	for i := range a {
		c := Compare(a[i], b[i])
		if desc[i] {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return false
}

func (ev *evaluator) applyLimit(st *SelectStmt, res *Result) error {
	if st.Limit == nil {
		return nil
	}
	lv, err := ev.eval(st.Limit, nil)
	if err != nil {
		return err
	}
	limit := int(lv.Int64())
	offset := 0
	if st.Offset != nil {
		ov, err := ev.eval(st.Offset, nil)
		if err != nil {
			return err
		}
		offset = int(ov.Int64())
	}
	if offset < 0 {
		offset = 0
	}
	if offset >= len(res.Rows) {
		res.Rows = nil
		return nil
	}
	res.Rows = res.Rows[offset:]
	if limit >= 0 && limit < len(res.Rows) {
		res.Rows = res.Rows[:limit]
	}
	return nil
}

// projected carries one output row plus its sort keys.
type projected struct {
	out  []Value
	keys []Value
}

// execCore runs a single non-compound SELECT body.
func (ev *evaluator) execCore(st *SelectStmt, outer *rowScope, applyOrderLimit bool) (*Result, error) {
	var cols []scopeCol
	var rows [][]Value
	var src *fromSource
	if st.From != nil {
		var err error
		src, err = ev.evalFrom(st.From, outer)
		if err != nil {
			return nil, err
		}
		cols, rows = src.cols, src.rows
	} else {
		rows = [][]Value{{}}
	}

	// Validate column references at this query level eagerly so that a bad
	// query fails even over an empty table. Subquery bodies are validated
	// when they execute.
	validate := func(e Expr) error { return validateCols(e, cols, outer) }
	for _, item := range st.Items {
		if !item.Star {
			if err := validate(item.Expr); err != nil {
				return nil, err
			}
		}
	}
	if err := validate(st.Where); err != nil {
		return nil, err
	}
	for _, ge := range st.GroupBy {
		if err := validate(ge); err != nil {
			return nil, err
		}
	}
	if err := validate(st.Having); err != nil {
		return nil, err
	}

	// WHERE filter. When the source is a single base table and the WHERE
	// carries usable equality conjuncts, probe the table's hash index first
	// to shrink the candidate set (index.go); the full predicate is still
	// evaluated over every candidate, so the probe only has to be a
	// superset and the result is identical to a scan.
	if st.Where != nil {
		if cand, ok, err := ev.indexFilter(src, st.Where, outer); err != nil {
			return nil, err
		} else if ok {
			rows = cand
		}
		filtered := rows[:0:0]
		for _, row := range rows {
			s := &rowScope{cols: cols, row: row, parent: outer}
			v, err := ev.eval(st.Where, s)
			if err != nil {
				return nil, err
			}
			if truth, _ := v.Truth(); truth {
				filtered = append(filtered, row)
			}
		}
		rows = filtered
	}

	aggregated := len(st.GroupBy) > 0 || st.Having != nil
	if !aggregated {
		for _, item := range st.Items {
			if item.Expr != nil && hasAggregate(item.Expr) {
				aggregated = true
				break
			}
		}
	}
	if !aggregated {
		for _, k := range st.OrderBy {
			if hasAggregate(k.Expr) {
				aggregated = true
				break
			}
		}
	}

	// Expand the select list into concrete expressions and column names.
	type projItem struct {
		expr  Expr
		name  string
		alias string
	}
	var items []projItem
	for _, item := range st.Items {
		if item.Star {
			want := strings.ToLower(item.StarTable)
			matched := false
			for _, c := range cols {
				if want != "" && c.table != want {
					continue
				}
				matched = true
				items = append(items, projItem{
					expr: &ColExpr{Table: c.table, Name: c.name},
					name: c.name,
				})
			}
			if want != "" && !matched {
				return nil, fmt.Errorf("%w: %s.*", ErrNoSuchTable, item.StarTable)
			}
			continue
		}
		name := item.Alias
		if name == "" {
			if ce, ok := item.Expr.(*ColExpr); ok {
				name = ce.Name
			} else {
				name = exprName(item.Expr)
			}
		}
		items = append(items, projItem{expr: item.Expr, name: name, alias: item.Alias})
	}
	columns := make([]string, len(items))
	for i, it := range items {
		columns[i] = it.name
	}

	// Resolve ORDER BY keys: select-list aliases and 1-based positions map
	// to projected columns; anything else evaluates in the source scope.
	type orderPlan struct {
		colIdx int // >= 0: use projected column
		expr   Expr
		desc   bool
	}
	var plans []orderPlan
	if applyOrderLimit {
		for _, key := range st.OrderBy {
			plan := orderPlan{colIdx: -1, expr: key.Expr, desc: key.Desc}
			switch k := key.Expr.(type) {
			case *ColExpr:
				if k.Table == "" {
					for ci, it := range items {
						if it.alias != "" && strings.EqualFold(it.alias, k.Name) {
							plan.colIdx = ci
							break
						}
					}
				}
			case *Literal:
				if k.Val.Kind() == KindInt {
					n := int(k.Val.Int64())
					if n < 1 || n > len(items) {
						return nil, fmt.Errorf("sqldb: ORDER BY position %d out of range", n)
					}
					plan.colIdx = n - 1
				}
			}
			plans = append(plans, plan)
		}
	}

	project := func(s *rowScope) (*projected, error) {
		p := &projected{out: make([]Value, len(items))}
		for i, it := range items {
			v, err := ev.eval(it.expr, s)
			if err != nil {
				return nil, err
			}
			p.out[i] = v
		}
		for _, plan := range plans {
			if plan.colIdx >= 0 {
				p.keys = append(p.keys, p.out[plan.colIdx])
				continue
			}
			v, err := ev.eval(plan.expr, s)
			if err != nil {
				return nil, err
			}
			p.keys = append(p.keys, v)
		}
		return p, nil
	}

	var projRows []*projected
	if aggregated {
		groups, order, err := ev.groupRows(st.GroupBy, cols, rows, outer)
		if err != nil {
			return nil, err
		}
		for _, gk := range order {
			group := groups[gk]
			rep := make([]Value, len(cols))
			for i := range rep {
				rep[i] = Null()
			}
			if len(group) > 0 {
				rep = group[0]
			}
			s := &rowScope{cols: cols, row: rep, parent: outer, grouped: true, group: group}
			if st.Having != nil {
				hv, err := ev.eval(st.Having, s)
				if err != nil {
					return nil, err
				}
				if truth, _ := hv.Truth(); !truth {
					continue
				}
			}
			p, err := project(s)
			if err != nil {
				return nil, err
			}
			projRows = append(projRows, p)
		}
	} else {
		for _, row := range rows {
			s := &rowScope{cols: cols, row: row, parent: outer}
			p, err := project(s)
			if err != nil {
				return nil, err
			}
			projRows = append(projRows, p)
		}
	}

	if st.Distinct {
		seen := map[string]bool{}
		dedup := projRows[:0:0]
		for _, p := range projRows {
			k := rowKey(p.out)
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, p)
			}
		}
		projRows = dedup
	}

	if applyOrderLimit && len(plans) > 0 {
		desc := make([]bool, len(plans))
		for i := range plans {
			desc[i] = plans[i].desc
		}
		sort.SliceStable(projRows, func(a, b int) bool {
			return lessKeys(projRows[a].keys, projRows[b].keys, desc)
		})
	}

	res := &Result{Columns: columns}
	for _, p := range projRows {
		res.Rows = append(res.Rows, p.out)
	}
	if applyOrderLimit {
		if err := ev.applyLimit(st, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// groupRows partitions rows by the GROUP BY key expressions, preserving
// first-seen order. With no GROUP BY it forms a single group containing all
// rows (possibly zero, for global aggregates over empty inputs).
func (ev *evaluator) groupRows(groupBy []Expr, cols []scopeCol, rows [][]Value, outer *rowScope) (map[string][][]Value, []string, error) {
	groups := make(map[string][][]Value)
	var order []string
	if len(groupBy) == 0 {
		groups[""] = rows
		return groups, []string{""}, nil
	}
	for _, row := range rows {
		s := &rowScope{cols: cols, row: row, parent: outer}
		var sb strings.Builder
		for _, ge := range groupBy {
			v, err := ev.eval(ge, s)
			if err != nil {
				return nil, nil, err
			}
			v.groupKey(&sb)
		}
		k := sb.String()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	return groups, order, nil
}

// fromSource is one materialised FROM operand. tbl is the provenance used
// by the index planner: non-nil exactly when rows is a base table's live
// (or snapshot) row set, so positions in rows are positions in the table
// and the table's persistent index registry applies.
type fromSource struct {
	cols []scopeCol
	rows [][]Value
	tbl  *Table
}

// evalTableExpr materialises a FROM source into a scope-column list and
// row set.
func (ev *evaluator) evalTableExpr(te TableExpr, outer *rowScope) ([]scopeCol, [][]Value, error) {
	src, err := ev.evalFrom(te, outer)
	if err != nil {
		return nil, nil, err
	}
	return src.cols, src.rows, nil
}

// evalFrom materialises a FROM source, keeping base-table provenance.
func (ev *evaluator) evalFrom(te TableExpr, outer *rowScope) (*fromSource, error) {
	switch t := te.(type) {
	case *TableName:
		key := strings.ToLower(t.Name)
		alias := strings.ToLower(t.Alias)
		if alias == "" {
			alias = key
		}
		if tbl, ok := ev.tables[key]; ok {
			cols := make([]scopeCol, len(tbl.Cols))
			for i, c := range tbl.Cols {
				cols[i] = scopeCol{table: alias, name: strings.ToLower(c.Name)}
			}
			return &fromSource{cols: cols, rows: tbl.Rows, tbl: tbl}, nil
		}
		if view, ok := ev.views[key]; ok {
			res, err := ev.execSelect(view.Select, nil)
			if err != nil {
				return nil, fmt.Errorf("sqldb: view %s: %w", view.Name, err)
			}
			cols := make([]scopeCol, len(res.Columns))
			for i, name := range res.Columns {
				cols[i] = scopeCol{table: alias, name: strings.ToLower(name)}
			}
			return &fromSource{cols: cols, rows: res.Rows}, nil
		}
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, t.Name)

	case *SubqueryTable:
		res, err := ev.execSelect(t.Select, nil)
		if err != nil {
			return nil, err
		}
		alias := strings.ToLower(t.Alias)
		cols := make([]scopeCol, len(res.Columns))
		for i, name := range res.Columns {
			cols[i] = scopeCol{table: alias, name: strings.ToLower(name)}
		}
		return &fromSource{cols: cols, rows: res.Rows}, nil

	case *JoinExpr:
		return ev.evalJoin(t, outer)
	}
	return nil, fmt.Errorf("sqldb: unsupported FROM clause %T", te)
}

func (ev *evaluator) evalJoin(j *JoinExpr, outer *rowScope) (*fromSource, error) {
	left, err := ev.evalFrom(j.Left, outer)
	if err != nil {
		return nil, err
	}
	right, err := ev.evalFrom(j.Right, outer)
	if err != nil {
		return nil, err
	}

	if j.Natural {
		return ev.evalNaturalJoin(j.Kind, left, right)
	}

	lcols, lrows := left.cols, left.rows
	rcols, rrows := right.cols, right.rows
	cols := append(append([]scopeCol{}, lcols...), rcols...)

	// Hash path: `a.x = b.y` conjuncts in ON become index probes into the
	// right side instead of an O(n·m) nested loop. The full ON predicate is
	// re-evaluated over each candidate pair, so the probe result only needs
	// to be a superset of the true matches; left-join null-extension still
	// sees exactly the rows with no surviving candidate.
	probeRight, hashed := ev.joinProber(j.On, left, right, outer)
	if hashed && len(lrows) > 0 && len(rrows) > 0 {
		// The nested loop evaluates ON for every pair, surfacing bad or
		// ambiguous column references; an index probe that comes back empty
		// would mask them, so validate ON eagerly on the hash path.
		if err := validateCols(j.On, cols, outer); err != nil {
			return nil, err
		}
	}

	var out [][]Value
	for _, lr := range lrows {
		matched := false
		candidates, all, err := probeRight(lr)
		if err != nil {
			return nil, err
		}
		emit := func(rr []Value) (bool, error) {
			row := make([]Value, 0, len(lr)+len(rr))
			row = append(row, lr...)
			row = append(row, rr...)
			if j.On != nil {
				s := &rowScope{cols: cols, row: row, parent: outer}
				v, err := ev.eval(j.On, s)
				if err != nil {
					return false, err
				}
				if truth, _ := v.Truth(); !truth {
					return false, nil
				}
			}
			out = append(out, row)
			return true, nil
		}
		if all {
			for _, rr := range rrows {
				ok, err := emit(rr)
				if err != nil {
					return nil, err
				}
				matched = matched || ok
			}
		} else {
			for _, ri := range candidates {
				ok, err := emit(rrows[ri])
				if err != nil {
					return nil, err
				}
				matched = matched || ok
			}
		}
		if j.Kind == JoinLeft && !matched {
			row := make([]Value, 0, len(lr)+len(rcols))
			row = append(row, lr...)
			for range rcols {
				row = append(row, Null())
			}
			out = append(out, row)
		}
	}
	return &fromSource{cols: cols, rows: out}, nil
}

// evalNaturalJoin joins on equality of all identically named columns; the
// shared columns appear once in the output (taken from the left side).
func (ev *evaluator) evalNaturalJoin(kind JoinKind, left, right *fromSource) (*fromSource, error) {
	lcols, lrows := left.cols, left.rows
	rcols, rrows := right.cols, right.rows
	type pair struct{ li, ri int }
	var common []pair
	rightDrop := make([]bool, len(rcols))
	for ri, rc := range rcols {
		for li, lc := range lcols {
			if lc.name == rc.name {
				common = append(common, pair{li, ri})
				rightDrop[ri] = true
				break
			}
		}
	}
	cols := append([]scopeCol{}, lcols...)
	for ri, rc := range rcols {
		if !rightDrop[ri] {
			cols = append(cols, rc)
		}
	}

	// Hash the right side on the common columns; candidates are re-checked
	// with CompareSQL, so probe hits only need to be a superset.
	liPos := make([]int, len(common))
	riPos := make([]int, len(common))
	for i, p := range common {
		liPos[i] = p.li
		riPos[i] = p.ri
	}
	probeRight := ev.naturalProber(liPos, riPos, right)

	var out [][]Value
	for _, lr := range lrows {
		matched := false
		emit := func(rr []Value) bool {
			for _, p := range common {
				cmp, known := CompareSQL(lr[p.li], rr[p.ri])
				if !known || cmp != 0 {
					return false
				}
			}
			row := append([]Value{}, lr...)
			for ri, v := range rr {
				if !rightDrop[ri] {
					row = append(row, v)
				}
			}
			out = append(out, row)
			return true
		}
		candidates, all := probeRight(lr)
		if all {
			for _, rr := range rrows {
				matched = emit(rr) || matched
			}
		} else {
			for _, ri := range candidates {
				matched = emit(rrows[ri]) || matched
			}
		}
		if kind == JoinLeft && !matched {
			row := append([]Value{}, lr...)
			for ri := range rcols {
				if !rightDrop[ri] {
					row = append(row, Null())
				}
			}
			out = append(out, row)
		}
	}
	return &fromSource{cols: cols, rows: out}, nil
}

// validateCols checks that every column reference in e (not descending into
// subqueries) resolves in the given scope columns or an outer scope.
func validateCols(e Expr, cols []scopeCol, outer *rowScope) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *ColExpr:
		table := strings.ToLower(x.Table)
		name := strings.ToLower(x.Name)
		probe := &rowScope{cols: cols, parent: outer}
		for sc := probe; sc != nil; sc = sc.parent {
			idx, err := sc.lookup(table, name)
			if err != nil {
				return err
			}
			if idx >= 0 {
				return nil
			}
		}
		if x.Table != "" {
			return fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, x.Table, x.Name)
		}
		return fmt.Errorf("%w: %s", ErrNoSuchColumn, x.Name)
	case *Unary:
		return validateCols(x.X, cols, outer)
	case *Binary:
		if err := validateCols(x.L, cols, outer); err != nil {
			return err
		}
		return validateCols(x.R, cols, outer)
	case *FuncCall:
		for _, a := range x.Args {
			if err := validateCols(a, cols, outer); err != nil {
				return err
			}
		}
	case *IsNullExpr:
		return validateCols(x.X, cols, outer)
	case *BetweenExpr:
		for _, sub := range []Expr{x.X, x.Lo, x.Hi} {
			if err := validateCols(sub, cols, outer); err != nil {
				return err
			}
		}
	case *LikeExpr:
		if err := validateCols(x.X, cols, outer); err != nil {
			return err
		}
		return validateCols(x.Pattern, cols, outer)
	case *InExpr:
		if err := validateCols(x.X, cols, outer); err != nil {
			return err
		}
		for _, le := range x.List {
			if err := validateCols(le, cols, outer); err != nil {
				return err
			}
		}
	case *CaseExpr:
		if err := validateCols(x.Operand, cols, outer); err != nil {
			return err
		}
		for _, w := range x.Whens {
			if err := validateCols(w.Cond, cols, outer); err != nil {
				return err
			}
			if err := validateCols(w.Result, cols, outer); err != nil {
				return err
			}
		}
		return validateCols(x.Else, cols, outer)
	case *CastExpr:
		return validateCols(x.X, cols, outer)
	}
	return nil
}

// exprName synthesises a result column name for an unnamed expression,
// approximating SQLite's use of the expression text.
func exprName(e Expr) string {
	switch x := e.(type) {
	case *Literal:
		return x.Val.String()
	case *ColExpr:
		if x.Table != "" {
			return x.Table + "." + x.Name
		}
		return x.Name
	case *FuncCall:
		if x.Star {
			return x.Name + "(*)"
		}
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = exprName(a)
		}
		return x.Name + "(" + strings.Join(args, ",") + ")"
	case *Binary:
		return exprName(x.L) + x.Op + exprName(x.R)
	case *Unary:
		return x.Op + exprName(x.X)
	case *SubqueryExpr:
		return "(subquery)"
	case *CastExpr:
		return "CAST(" + exprName(x.X) + ")"
	case *CaseExpr:
		return "CASE"
	case *ParamExpr:
		return "?"
	}
	return "expr"
}
