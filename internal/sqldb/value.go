// Package sqldb is an embedded relational database engine in the spirit of
// SQLite, built for running inside the LibSEAL enclave. It supports the SQL
// dialect used by the paper's audit schemas, invariants and trimming
// queries: CREATE TABLE/VIEW, INSERT, UPDATE, DELETE, SELECT with inner/
// left/natural joins, WHERE, GROUP BY, HAVING, ORDER BY, LIMIT/OFFSET,
// DISTINCT, aggregate functions, scalar and IN/EXISTS subqueries (including
// correlated ones), and `?` parameters.
package sqldb

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates runtime value types, mirroring SQLite's storage classes.
type Kind int

const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
	KindBlob
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "REAL"
	case KindText:
		return "TEXT"
	case KindBlob:
		return "BLOB"
	}
	return "?"
}

// Value is one SQL value.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    []byte
}

// Constructors.

// Null returns the SQL NULL value.
func Null() Value { return Value{kind: KindNull} }

// Int returns an INTEGER value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a REAL value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Text returns a TEXT value.
func Text(v string) Value { return Value{kind: KindText, s: v} }

// Blob returns a BLOB value (the slice is not copied).
func Blob(v []byte) Value { return Value{kind: KindBlob, b: v} }

// Bool returns an INTEGER 0/1 value, SQL's boolean representation.
func Bool(v bool) Value {
	if v {
		return Int(1)
	}
	return Int(0)
}

// FromGo converts a Go value into a SQL value. Supported types: nil, bool,
// all int/uint variants, float32/64, string, []byte and Value itself.
func FromGo(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return Null(), nil
	case Value:
		return x, nil
	case bool:
		return Bool(x), nil
	case int:
		return Int(int64(x)), nil
	case int8:
		return Int(int64(x)), nil
	case int16:
		return Int(int64(x)), nil
	case int32:
		return Int(int64(x)), nil
	case int64:
		return Int(x), nil
	case uint:
		return Int(int64(x)), nil
	case uint8:
		return Int(int64(x)), nil
	case uint16:
		return Int(int64(x)), nil
	case uint32:
		return Int(int64(x)), nil
	case uint64:
		return Int(int64(x)), nil
	case float32:
		return Float(float64(x)), nil
	case float64:
		return Float(x), nil
	case string:
		return Text(x), nil
	case []byte:
		return Blob(x), nil
	default:
		return Null(), fmt.Errorf("sqldb: unsupported parameter type %T", v)
	}
}

// Kind returns the value's storage class.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int64 returns the value as int64 (REAL is truncated, TEXT parsed, NULL 0).
func (v Value) Int64() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindText:
		n, _ := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		return n
	}
	return 0
}

// Float64 returns the value as float64.
func (v Value) Float64() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	case KindText:
		f, _ := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return f
	}
	return 0
}

// TextVal returns the value rendered as text.
func (v Value) TextVal() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return v.s
	case KindBlob:
		return string(v.b)
	}
	return ""
}

// BlobVal returns the raw bytes of a BLOB (or nil for other kinds).
func (v Value) BlobVal() []byte {
	if v.kind == KindBlob {
		return v.b
	}
	return nil
}

// Truth implements SQL three-valued logic coercion: NULL is unknown; numeric
// zero is false; everything else follows SQLite's numeric coercion.
func (v Value) Truth() (bool, bool) { // (value, known)
	switch v.kind {
	case KindNull:
		return false, false
	case KindInt:
		return v.i != 0, true
	case KindFloat:
		return v.f != 0, true
	case KindText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return err == nil && f != 0, true
	case KindBlob:
		return false, true
	}
	return false, true
}

// String implements fmt.Stringer for debugging and result printing.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindText:
		return v.s
	case KindBlob:
		return fmt.Sprintf("x'%x'", v.b)
	default:
		return v.TextVal()
	}
}

// typeRank orders storage classes for cross-type comparison, following
// SQLite: NULL < numeric < TEXT < BLOB.
func typeRank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	case KindText:
		return 2
	case KindBlob:
		return 3
	}
	return 4
}

// Compare orders two values. NULLs order lowest (as in ORDER BY); use
// CompareSQL for comparison-operator semantics where NULL is unknown.
func Compare(a, b Value) int {
	ra, rb := typeRank(a.kind), typeRank(b.kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0:
		return 0
	case 1:
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			}
			return 0
		}
		af, bf := a.Float64(), b.Float64()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		case math.IsNaN(af) && !math.IsNaN(bf):
			return -1
		case !math.IsNaN(af) && math.IsNaN(bf):
			return 1
		}
		return 0
	case 2:
		return strings.Compare(a.s, b.s)
	default:
		return bytes.Compare(a.b, b.b)
	}
}

// CompareSQL compares with SQL semantics: if either side is NULL the result
// is unknown (ok=false).
func CompareSQL(a, b Value) (cmp int, ok bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	return Compare(a, b), true
}

// Equal reports deep value equality (used for DISTINCT and GROUP BY keys,
// where NULLs compare equal to each other, as in SQLite).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// groupKey renders a value into a canonical string usable as a map key for
// grouping and DISTINCT.
func (v Value) groupKey(sb *strings.Builder) {
	switch v.kind {
	case KindNull:
		sb.WriteByte('n')
	case KindInt:
		sb.WriteByte('i')
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindFloat:
		// Integral floats group with equal ints, mirroring Compare.
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && math.Abs(v.f) < 1e18 {
			sb.WriteByte('i')
			sb.WriteString(strconv.FormatInt(int64(v.f), 10))
		} else {
			sb.WriteByte('f')
			sb.WriteString(strconv.FormatFloat(v.f, 'b', -1, 64))
		}
	case KindText:
		sb.WriteByte('t')
		sb.WriteString(strconv.Itoa(len(v.s)))
		sb.WriteByte(':')
		sb.WriteString(v.s)
	case KindBlob:
		sb.WriteByte('b')
		sb.WriteString(strconv.Itoa(len(v.b)))
		sb.WriteByte(':')
		sb.Write(v.b)
	}
	sb.WriteByte('|')
}
