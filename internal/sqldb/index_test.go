package sqldb

import (
	"fmt"
	"testing"
)

// diffDBs builds the same database twice, once with hash indexes enabled and
// once with them disabled, runs every query against both, and requires
// identical results. The scan engine is the oracle: indexes are a pure
// planner optimisation and must never change what a query returns.
func diffDBs(t *testing.T, setup func(t *testing.T, db *DB), queries []string) {
	t.Helper()
	indexed, scan := New(), New()
	scan.SetIndexing(false)
	setup(t, indexed)
	setup(t, scan)
	for _, q := range queries {
		ri, ei := indexed.Query(q)
		rs, es := scan.Query(q)
		if (ei != nil) != (es != nil) {
			t.Fatalf("query %q: indexed err=%v scan err=%v", q, ei, es)
		}
		if ei != nil {
			continue
		}
		if flat(ri) != flat(rs) {
			t.Fatalf("query %q:\n  indexed: %q\n  scan:    %q", q, flat(ri), flat(rs))
		}
	}
}

func multiRepoGit(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, `
		CREATE TABLE updates (time INTEGER, repo TEXT, branch TEXT, cid TEXT, type TEXT);
		CREATE TABLE advertisements (time INTEGER, repo TEXT, branch TEXT, cid TEXT);
	`)
	mustExec(t, db, `CREATE VIEW branchcnt AS
		SELECT DISTINCT a.time,a.repo,COUNT(u.branch) AS cnt
		FROM advertisements a
		JOIN updates u ON u.time < a.time AND u.repo = a.repo
		WHERE u.type != 'delete' AND u.time = (SELECT MAX(time)
			FROM updates WHERE branch = u.branch
			AND repo = u.repo AND time < a.time) GROUP BY
			a.time,a.repo,a.branch`)
	clock := 0
	heads := map[string]string{}
	for round := 0; round < 6; round++ {
		for r := 0; r < 4; r++ {
			repo := fmt.Sprintf("repo%d", r)
			for b := 0; b < 3; b++ {
				branch := fmt.Sprintf("b%d", b)
				clock++
				cid := fmt.Sprintf("c%d", clock)
				typ := "update"
				if round == 4 && b == 2 {
					typ = "delete" // exercise the type != 'delete' filter
				} else {
					heads[repo+"/"+branch] = cid
				}
				mustExec(t, db, "INSERT INTO updates VALUES (?,?,?,?,?)",
					clock, repo, branch, cid, typ)
			}
		}
		// Advertise repo0's live heads; repo2 gets a rollback at round 3
		// so the soundness query has real violations to agree on.
		clock++
		for b := 0; b < 3; b++ {
			branch := fmt.Sprintf("b%d", b)
			if cid, ok := heads["repo0/"+branch]; ok {
				mustExec(t, db, "INSERT INTO advertisements VALUES (?,?,?,?)",
					clock, "repo0", branch, cid)
			}
		}
		if round == 3 {
			mustExec(t, db, "INSERT INTO advertisements VALUES (?,?,?,?)",
				clock, "repo2", "b0", "c1")
		}
	}
}

// TestIndexDifferentialGitCorpus runs the paper's own invariant queries —
// the worst SQL this engine sees in production — over a multi-repo history
// with indexing on and off.
func TestIndexDifferentialGitCorpus(t *testing.T) {
	diffDBs(t, func(t *testing.T, db *DB) { multiRepoGit(t, db) }, []string{
		gitSoundnessSQL,
		gitCompletenessSQL,
		"SELECT * FROM branchcnt ORDER BY time, repo",
		"SELECT COUNT(*) FROM updates WHERE repo = 'repo2'",
		"SELECT repo, COUNT(*) FROM updates GROUP BY repo ORDER BY repo",
		`SELECT u.time, a.time FROM updates u JOIN advertisements a
			ON u.repo = a.repo AND u.branch = a.branch
			ORDER BY u.time, a.time`,
		`SELECT time FROM updates WHERE time NOT IN
			(SELECT MAX(time) FROM updates GROUP BY repo, branch)
			ORDER BY time`,
	})
}

// TestIndexDifferentialEdgeValues covers the value classes where a hash
// probe could diverge from scan semantics: NULLs (= never matches NULL),
// integers vs floats that compare equal (1 = 1.0), floats too large to
// round-trip through int64 (the "unsafe" rows kept aside by the index),
// and infinities.
func TestIndexDifferentialEdgeValues(t *testing.T) {
	setup := func(t *testing.T, db *DB) {
		mustExec(t, db, "CREATE TABLE v (k, tag TEXT)")
		mustExec(t, db, "INSERT INTO v VALUES (1, 'int1')")
		mustExec(t, db, "INSERT INTO v VALUES (1.0, 'float1')")
		mustExec(t, db, "INSERT INTO v VALUES (2.5, 'frac')")
		mustExec(t, db, "INSERT INTO v VALUES (NULL, 'null')")
		mustExec(t, db, "INSERT INTO v VALUES (1e18, 'big18')")
		mustExec(t, db, "INSERT INTO v VALUES (1000000000000000000, 'bigint')")
		mustExec(t, db, "INSERT INTO v VALUES (1e19, 'big19')")
		mustExec(t, db, "INSERT INTO v VALUES (9e307 * 10, 'inf')")
		mustExec(t, db, "INSERT INTO v VALUES ('1', 'text1')")
		mustExec(t, db, "CREATE TABLE probe (k, why TEXT)")
		mustExec(t, db, `INSERT INTO probe VALUES
			(1, 'i'), (1.0, 'f'), (2.5, 'x'), (NULL, 'n'), (1e18, 'b')`)
	}
	diffDBs(t, setup, []string{
		"SELECT tag FROM v WHERE k = 1 ORDER BY tag",
		"SELECT tag FROM v WHERE k = 1.0 ORDER BY tag",
		"SELECT tag FROM v WHERE k = 2.5 ORDER BY tag",
		"SELECT tag FROM v WHERE k = '1' ORDER BY tag",
		"SELECT tag FROM v WHERE k = 1e18 ORDER BY tag",
		"SELECT tag FROM v WHERE k = 1000000000000000000 ORDER BY tag",
		"SELECT tag FROM v WHERE k = 1e19 ORDER BY tag",
		"SELECT tag FROM v WHERE k = NULL ORDER BY tag",
		"SELECT tag FROM v WHERE k IS NULL ORDER BY tag",
		`SELECT v.tag, probe.why FROM v JOIN probe ON v.k = probe.k
			ORDER BY v.tag, probe.why`,
		`SELECT tag FROM v WHERE k IN (SELECT k FROM probe) ORDER BY tag`,
	})
}

// Equality probes with a NULL parameter must return no rows, in both modes.
func TestIndexNullParamProbe(t *testing.T) {
	for _, on := range []bool{true, false} {
		db := New()
		db.SetIndexing(on)
		mustExec(t, db, "CREATE TABLE t (a INTEGER)")
		mustExec(t, db, "INSERT INTO t VALUES (1), (NULL)")
		res, err := db.Query("SELECT a FROM t WHERE a = ?", nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Empty() {
			t.Fatalf("indexing=%v: a = NULL matched %q", on, flat(res))
		}
	}
}

// Index maintenance across the mutation matrix: the second query after each
// mutation must reflect the new table state, not a stale index.
func TestIndexMaintenance(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (k TEXT, n INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', 1), ('b', 2)")
	q := func(key string) string {
		res := mustQuery(t, db, "SELECT n FROM t WHERE k = ? ORDER BY n", key)
		return flat(res)
	}

	if got := q("a"); got != "1" { // builds the index
		t.Fatalf("initial probe = %q", got)
	}
	// Incremental append: new rows visible without a rebuild.
	mustExec(t, db, "INSERT INTO t VALUES ('a', 3)")
	if got := q("a"); got != "1;3" {
		t.Fatalf("after INSERT = %q", got)
	}
	// UPDATE of the indexed column.
	mustExec(t, db, "UPDATE t SET k = 'z' WHERE n = 1")
	if got := q("a"); got != "3" {
		t.Fatalf("after UPDATE key = %q", got)
	}
	if got := q("z"); got != "1" {
		t.Fatalf("after UPDATE new key = %q", got)
	}
	// UPDATE of a non-indexed column still shows through.
	mustExec(t, db, "UPDATE t SET n = 7 WHERE k = 'b'")
	if got := q("b"); got != "7" {
		t.Fatalf("after UPDATE value = %q", got)
	}
	// DELETE invalidates.
	mustExec(t, db, "DELETE FROM t WHERE k = 'a'")
	if got := q("a"); got != "" {
		t.Fatalf("after DELETE = %q", got)
	}
	// Truncate then reinsert the same number of rows: a watermark-only
	// index would silently serve the old rows here.
	total, _ := db.TableRowCount("t")
	if err := db.RemoveLastRows("t", int(total)); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO t VALUES ('a', 100), ('b', 200)")
	if got := q("a"); got != "100" {
		t.Fatalf("after truncate+reinsert = %q", got)
	}
	if got := q("z"); got != "" {
		t.Fatalf("stale key after truncate = %q", got)
	}
}

// Compound ORDER BY with mixed directions and ties, against precomputed
// sort keys.
func TestOrderByCompoundDirections(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
	mustExec(t, db, `INSERT INTO t VALUES
		(2, 'x', 1.5), (1, 'y', 0.5), (2, 'x', 0.5),
		(1, 'x', 2.5), (2, 'y', 1.5), (1, 'y', 1.5)`)
	res := mustQuery(t, db, "SELECT a, b, c FROM t ORDER BY a DESC, b, c DESC")
	want := "2,x,1.5;2,x,0.5;2,y,1.5;1,x,2.5;1,y,1.5;1,y,0.5"
	if flat(res) != want {
		t.Fatalf("ORDER BY = %q, want %q", flat(res), want)
	}
}

// LIKE shape classification and matching, including the cache-invalidation
// path where a prepared statement's pattern parameter changes per call.
func TestLikeShapes(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
		shape      likeShape
	}{
		{"abc", "abc", true, likeExact},
		{"abc", "ABC", true, likeExact},
		{"abc", "abcd", false, likeExact},
		{"ab%", "abode", true, likePrefix},
		{"ab%", "ba", false, likePrefix},
		{"%yz", "xyz", true, likeSuffix},
		{"%yz", "yza", false, likeSuffix},
		{"%mid%", "a mid b", true, likeContains},
		{"%mid%", "m i d", false, likeContains},
		{"%%mid%%", "a mid b", true, likeContains},
		{"a_c", "abc", true, likeGeneric},
		{"a_c", "ac", false, likeGeneric},
		{"a%b%c", "a-x-b-y-c", true, likeGeneric},
		{"a%b%c", "acb", false, likeGeneric},
		{"_%", "", false, likeGeneric},
		{"%", "anything", true, likeContains},
		{"%", "", true, likeContains},
	}
	for _, c := range cases {
		prog := compileLike(c.pattern)
		if prog.shape != c.shape {
			t.Errorf("compileLike(%q).shape = %d, want %d", c.pattern, prog.shape, c.shape)
		}
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

func TestLikeCacheParamPattern(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('apple'), ('banana'), ('apricot')")
	stmt, err := db.Prepare("SELECT s FROM t WHERE s LIKE ? ORDER BY s")
	if err != nil {
		t.Fatal(err)
	}
	// The cached program is keyed by pattern text: alternating patterns on
	// one AST node must each match correctly.
	for i := 0; i < 3; i++ {
		res, err := stmt.Query("ap%")
		if err != nil {
			t.Fatal(err)
		}
		if flat(res) != "apple;apricot" {
			t.Fatalf("iter %d ap%%: %q", i, flat(res))
		}
		res, err = stmt.Query("%na")
		if err != nil {
			t.Fatal(err)
		}
		if flat(res) != "banana" {
			t.Fatalf("iter %d %%na: %q", i, flat(res))
		}
	}
}
