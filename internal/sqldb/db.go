package sqldb

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Common errors.
var (
	ErrNoSuchTable  = errors.New("sqldb: no such table")
	ErrTableExists  = errors.New("sqldb: table already exists")
	ErrNoSuchColumn = errors.New("sqldb: no such column")
)

// Table holds rows in insertion order.
//
// Row slices are immutable once stored: UPDATE replaces the row slice,
// never mutates it. The outer Rows slice follows copy-on-write discipline
// with snapshots (see snapshot.go): shared is set when a snapshot captures
// this table's row header, and the first subsequent in-place mutation
// copies the header so the snapshot keeps reading the original array.
type Table struct {
	Name string
	Cols []ColumnDef
	Rows [][]Value

	byName map[string]int // lowercased column name -> position; nil for hand-built tables
	idx    *tableIndexes  // lazy hash indexes; nil for hand-built tables
	shared bool           // a live snapshot references the current Rows header
}

func (t *Table) colIndex(name string) int {
	if t.byName != nil {
		if i, ok := t.byName[strings.ToLower(name)]; ok {
			return i
		}
		return -1
	}
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// colMap builds the lowercased name->position map for a column set.
func colMap(cols []ColumnDef) map[string]int {
	m := make(map[string]int, len(cols))
	for i, c := range cols {
		m[strings.ToLower(c.Name)] = i
	}
	return m
}

// View is a named stored SELECT.
type View struct {
	Name   string
	Select *SelectStmt
}

// DB is an in-memory relational database. All methods are safe for
// concurrent use; writers exclude readers.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	views   map[string]*View
	noIndex bool // disables the hash-index planner (ablation / debugging)
}

// New creates an empty database.
func New() *DB {
	return &DB{
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
	}
}

// SetIndexing enables or disables the hash-index planner for this database
// (and for snapshots taken after the call). Indexing is on by default; the
// switch exists for the indexed-vs-scan ablation and differential tests.
func (db *DB) SetIndexing(on bool) {
	db.mu.Lock()
	db.noIndex = !on
	db.mu.Unlock()
}

// evaluator builds an expression evaluator over the database's live tables.
// The caller must hold db.mu (shared or exclusive).
func (db *DB) evaluator(params []Value) *evaluator {
	return &evaluator{tables: db.tables, views: db.views, params: params, indexing: !db.noIndex}
}

// Result is the outcome of a query.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// Empty reports whether the result has no rows.
func (r *Result) Empty() bool { return len(r.Rows) == 0 }

// Stmt is a prepared statement that can be executed repeatedly without
// re-parsing.
type Stmt struct {
	db *DB
	st Statement
}

// Prepare parses a statement for repeated execution.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, st: st}, nil
}

// PrepareScript parses a semicolon-separated script into one prepared
// statement per statement, so callers that re-run fixed SQL (invariant
// checks, trim queries) parse it once instead of on every execution.
func (db *DB) PrepareScript(sql string) ([]*Stmt, error) {
	stmts, err := ParseAll(sql)
	if err != nil {
		return nil, err
	}
	out := make([]*Stmt, len(stmts))
	for i, st := range stmts {
		out[i] = &Stmt{db: db, st: st}
	}
	return out, nil
}

// Exec runs the prepared statement with the given parameters and returns the
// number of rows affected (for writes) or returned (for queries).
func (s *Stmt) Exec(args ...any) (int, error) {
	res, n, err := s.db.run(s.st, args)
	if err != nil {
		return 0, err
	}
	if res != nil {
		return len(res.Rows), nil
	}
	return n, nil
}

// Query runs the prepared statement, which must be a SELECT.
func (s *Stmt) Query(args ...any) (*Result, error) {
	res, _, err := s.db.run(s.st, args)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("sqldb: statement is not a query")
	}
	return res, nil
}

// Exec parses and runs one or more semicolon-separated statements, returning
// the total number of affected rows. Parameters apply in order across the
// script.
func (db *DB) Exec(sql string, args ...any) (int, error) {
	stmts, err := ParseAll(sql)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, st := range stmts {
		_, n, err := db.run(st, args)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// Query parses and runs a single SELECT.
func (db *DB) Query(sql string, args ...any) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	res, _, err := db.run(st, args)
	if err != nil {
		return nil, err
	}
	if res == nil {
		return nil, fmt.Errorf("sqldb: statement is not a query")
	}
	return res, nil
}

// run dispatches a parsed statement. It returns a Result for queries, or an
// affected-row count for writes.
func (db *DB) run(st Statement, args []any) (*Result, int, error) {
	params := make([]Value, len(args))
	for i, a := range args {
		v, err := FromGo(a)
		if err != nil {
			return nil, 0, err
		}
		params[i] = v
	}
	switch s := st.(type) {
	case *SelectStmt:
		db.mu.RLock()
		defer db.mu.RUnlock()
		res, err := db.evaluator(params).execSelect(s, nil)
		return res, 0, err
	case *CreateTableStmt:
		return nil, 0, db.createTable(s)
	case *CreateViewStmt:
		return nil, 0, db.createView(s)
	case *DropStmt:
		return nil, 0, db.drop(s)
	case *InsertStmt:
		n, err := db.insert(s, params)
		return nil, n, err
	case *UpdateStmt:
		n, err := db.update(s, params)
		return nil, n, err
	case *DeleteStmt:
		n, err := db.delete(s, params)
		return nil, n, err
	default:
		return nil, 0, fmt.Errorf("sqldb: unsupported statement %T", st)
	}
}

func (db *DB) createTable(s *CreateTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, ok := db.tables[key]; ok {
		if s.IfNotExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrTableExists, s.Name)
	}
	if _, ok := db.views[key]; ok {
		return fmt.Errorf("%w: %s (as view)", ErrTableExists, s.Name)
	}
	seen := map[string]bool{}
	for _, c := range s.Cols {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("sqldb: duplicate column %s", c.Name)
		}
		seen[lc] = true
	}
	db.tables[key] = &Table{Name: s.Name, Cols: s.Cols, byName: colMap(s.Cols), idx: newTableIndexes()}
	return nil
}

func (db *DB) createView(s *CreateViewStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, ok := db.views[key]; ok {
		if s.IfNotExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrTableExists, s.Name)
	}
	if _, ok := db.tables[key]; ok {
		return fmt.Errorf("%w: %s (as table)", ErrTableExists, s.Name)
	}
	db.views[key] = &View{Name: s.Name, Select: s.Select}
	return nil
}

func (db *DB) drop(s *DropStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Name)
	if s.View {
		if _, ok := db.views[key]; !ok {
			if s.IfExists {
				return nil
			}
			return fmt.Errorf("%w: view %s", ErrNoSuchTable, s.Name)
		}
		delete(db.views, key)
		return nil
	}
	if _, ok := db.tables[key]; !ok {
		if s.IfExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrNoSuchTable, s.Name)
	}
	delete(db.tables, key)
	return nil
}

// applyAffinity coerces a value according to the column's declared type,
// following SQLite's affinity rules closely enough for audit-log use.
func applyAffinity(v Value, t Kind) Value {
	if v.IsNull() {
		return v
	}
	switch t {
	case KindInt:
		switch v.kind {
		case KindInt:
			return v
		case KindFloat:
			if v.f == float64(int64(v.f)) {
				return Int(int64(v.f))
			}
			return v
		case KindText:
			s := strings.TrimSpace(v.s)
			var n int64
			if _, err := fmt.Sscanf(s, "%d", &n); err == nil && fmt.Sprintf("%d", n) == s {
				return Int(n)
			}
			return v
		}
	case KindFloat:
		switch v.kind {
		case KindInt:
			return Float(float64(v.i))
		case KindFloat:
			return v
		}
	case KindText:
		switch v.kind {
		case KindInt, KindFloat:
			return Text(v.TextVal())
		}
	}
	return v
}

func (db *DB) insert(s *InsertStmt, params []Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	// Map the statement's column list to table indices.
	idx := make([]int, 0, len(t.Cols))
	if len(s.Cols) == 0 {
		for i := range t.Cols {
			idx = append(idx, i)
		}
	} else {
		for _, name := range s.Cols {
			ci := t.colIndex(name)
			if ci < 0 {
				return 0, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, s.Table, name)
			}
			idx = append(idx, ci)
		}
	}
	ev := db.evaluator(params)

	var sourceRows [][]Value
	if s.Select != nil {
		res, err := ev.execSelect(s.Select, nil)
		if err != nil {
			return 0, err
		}
		sourceRows = res.Rows
	} else {
		for _, exprs := range s.Rows {
			row := make([]Value, len(exprs))
			for i, e := range exprs {
				v, err := ev.eval(e, nil)
				if err != nil {
					return 0, err
				}
				row[i] = v
			}
			sourceRows = append(sourceRows, row)
		}
	}
	inserted := 0
	for _, src := range sourceRows {
		if len(src) != len(idx) {
			return inserted, fmt.Errorf("sqldb: %d values for %d columns", len(src), len(idx))
		}
		row := make([]Value, len(t.Cols))
		for i := range row {
			row[i] = Null()
		}
		for i, ci := range idx {
			row[ci] = applyAffinity(src[i], t.Cols[ci].Type)
		}
		t.Rows = append(t.Rows, row)
		inserted++
	}
	return inserted, nil
}

// tableScope builds the evaluation scope for a single table's row.
func tableScope(t *Table, row []Value) *rowScope {
	cols := make([]scopeCol, len(t.Cols))
	alias := strings.ToLower(t.Name)
	for i, c := range t.Cols {
		cols[i] = scopeCol{table: alias, name: strings.ToLower(c.Name)}
	}
	return &rowScope{cols: cols, row: row}
}

func (db *DB) update(s *UpdateStmt, params []Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	setIdx := make([]int, len(s.Set))
	for i, a := range s.Set {
		ci := t.colIndex(a.Col)
		if ci < 0 {
			return 0, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, s.Table, a.Col)
		}
		setIdx[i] = ci
	}
	ev := db.evaluator(params)
	ev.nocache = true
	updated := 0
	for ri, row := range t.Rows {
		scope := tableScope(t, row)
		if s.Where != nil {
			v, err := ev.eval(s.Where, scope)
			if err != nil {
				return updated, err
			}
			if truth, _ := v.Truth(); !truth {
				continue
			}
		}
		newRow := append([]Value(nil), row...)
		for i, a := range s.Set {
			v, err := ev.eval(a.Expr, scope)
			if err != nil {
				return updated, err
			}
			newRow[setIdx[i]] = applyAffinity(v, t.Cols[setIdx[i]].Type)
		}
		if t.shared {
			// Copy-on-write: a snapshot still reads the current header, so
			// the first in-place store after a snapshot rewrites a fresh one.
			t.Rows = append([][]Value(nil), t.Rows...)
			t.shared = false
		}
		t.Rows[ri] = newRow
		updated++
	}
	if updated > 0 && t.idx != nil {
		// Positions are stable under UPDATE; only indexes over the assigned
		// columns go stale.
		t.idx.invalidateCols(setIdx)
	}
	return updated, nil
}

func (db *DB) delete(s *DeleteStmt, params []Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchTable, s.Table)
	}
	ev := db.evaluator(params)
	// Evaluate the predicate over the unmodified table first so subqueries
	// against the same table (as in LibSEAL's trimming queries) see a
	// consistent snapshot.
	keep := t.Rows[:0:0]
	deleted := 0
	var marks []bool
	if s.Where != nil {
		marks = make([]bool, len(t.Rows))
		for ri, row := range t.Rows {
			v, err := ev.eval(s.Where, tableScope(t, row))
			if err != nil {
				return 0, err
			}
			truth, _ := v.Truth()
			marks[ri] = truth
		}
	}
	for ri, row := range t.Rows {
		if s.Where == nil || marks[ri] {
			deleted++
			continue
		}
		keep = append(keep, row)
	}
	// keep grew from a zero-capacity header, so it is a fresh array: any
	// snapshot keeps the old one, and the new header is unshared.
	t.Rows = keep
	t.shared = false
	if deleted > 0 && t.idx != nil {
		t.idx.invalidateAll() // surviving rows shifted position
	}
	return deleted, nil
}

// Tables lists the table names in the database.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		out = append(out, t.Name)
	}
	return out
}

// TableColumns returns a table's column definitions.
func (db *DB) TableColumns(name string) ([]ColumnDef, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return append([]ColumnDef(nil), t.Cols...), nil
}

// TableRows returns a copy of a table's rows in storage order.
func (db *DB) TableRows(name string) ([][]Value, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	out := make([][]Value, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = append([]Value(nil), r...)
	}
	return out, nil
}

// RemoveLastRows removes the n most recently inserted rows of a table. It
// lets a caller undo its own trailing inserts when a multi-row group fails
// part-way; such a caller must serialise the table's writers so the trailing
// rows are in fact its own.
func (db *DB) RemoveLastRows(name string, n int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	if n > len(t.Rows) {
		n = len(t.Rows)
	}
	m := len(t.Rows) - n
	if t.shared {
		// Clip capacity too: a snapshot may still see the truncated suffix,
		// so later appends must reallocate rather than overwrite it.
		t.Rows = t.Rows[:m:m]
	} else {
		t.Rows = t.Rows[:m]
	}
	if n > 0 && t.idx != nil {
		t.idx.invalidateAll() // index watermark may exceed the new length
	}
	return nil
}

// TableRowCount returns the number of rows in a table.
func (db *DB) TableRowCount(name string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return len(t.Rows), nil
}
