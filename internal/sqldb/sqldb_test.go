package sqldb

import (
	"errors"
	"strings"
	"testing"
)

func mustExec(t *testing.T, db *DB, sql string, args ...any) int {
	t.Helper()
	n, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, sql string, args ...any) *Result {
	t.Helper()
	res, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res
}

// flat renders a result into a compact string for comparison.
func flat(res *Result) string {
	var sb strings.Builder
	for i, row := range res.Rows {
		if i > 0 {
			sb.WriteByte(';')
		}
		for j, v := range row {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(v.String())
		}
	}
	return sb.String()
}

func TestCreateInsertSelect(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	if n := mustExec(t, db, "INSERT INTO t VALUES (1, 'one'), (2, 'two')"); n != 2 {
		t.Fatalf("inserted %d, want 2", n)
	}
	res := mustQuery(t, db, "SELECT a, b FROM t")
	if got := flat(res); got != "1,one;2,two" {
		t.Fatalf("got %q", got)
	}
	if res.Columns[0] != "a" || res.Columns[1] != "b" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestInsertColumnSubset(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
	mustExec(t, db, "INSERT INTO t (b, a) VALUES ('x', 7)")
	res := mustQuery(t, db, "SELECT a, b, c FROM t")
	if got := flat(res); got != "7,x,NULL" {
		t.Fatalf("got %q", got)
	}
}

func TestParamBinding(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (?, ?)", 42, "hello")
	res := mustQuery(t, db, "SELECT b FROM t WHERE a = ?", 42)
	if got := flat(res); got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestMissingParam(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	if _, err := db.Exec("INSERT INTO t VALUES (?)"); err == nil {
		t.Fatal("expected error for missing parameter")
	}
}

func TestWhereOperators(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(2),(3),(4),(5)")
	cases := []struct{ sql, want string }{
		{"SELECT a FROM t WHERE a = 3", "3"},
		{"SELECT a FROM t WHERE a != 3", "1;2;4;5"},
		{"SELECT a FROM t WHERE a <> 3", "1;2;4;5"},
		{"SELECT a FROM t WHERE a < 3", "1;2"},
		{"SELECT a FROM t WHERE a <= 2", "1;2"},
		{"SELECT a FROM t WHERE a > 4", "5"},
		{"SELECT a FROM t WHERE a >= 4", "4;5"},
		{"SELECT a FROM t WHERE a BETWEEN 2 AND 4", "2;3;4"},
		{"SELECT a FROM t WHERE a NOT BETWEEN 2 AND 4", "1;5"},
		{"SELECT a FROM t WHERE a IN (1, 3, 9)", "1;3"},
		{"SELECT a FROM t WHERE a NOT IN (1, 3, 9)", "2;4;5"},
		{"SELECT a FROM t WHERE a = 1 OR a = 5", "1;5"},
		{"SELECT a FROM t WHERE a > 1 AND a < 3", "2"},
		{"SELECT a FROM t WHERE NOT a = 2", "1;3;4;5"},
		{"SELECT a FROM t WHERE a % 2 = 0", "2;4"},
		{"SELECT a+10 FROM t WHERE a = 1", "11"},
		{"SELECT a*2 FROM t WHERE a = 3", "6"},
		{"SELECT a-1 FROM t WHERE a = 1", "0"},
		{"SELECT a/2 FROM t WHERE a = 5", "2"},
	}
	for _, c := range cases {
		if got := flat(mustQuery(t, db, c.sql)); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(NULL),(3)")
	cases := []struct{ sql, want string }{
		{"SELECT a FROM t WHERE a = NULL", ""},              // NULL never equals
		{"SELECT a FROM t WHERE a != NULL", ""},             // unknown filtered out
		{"SELECT a FROM t WHERE a IS NULL", "NULL"},         //
		{"SELECT a FROM t WHERE a IS NOT NULL", "1;3"},      //
		{"SELECT COUNT(*) FROM t", "3"},                     // COUNT(*) counts NULLs
		{"SELECT COUNT(a) FROM t", "2"},                     // COUNT(col) skips NULLs
		{"SELECT a+1 FROM t WHERE a IS NULL", "NULL"},       // NULL propagates
		{"SELECT a FROM t WHERE a IN (1, NULL)", "1"},       // unknown for non-match
		{"SELECT a FROM t WHERE a NOT IN (9, NULL)", ""},    // all unknown
		{"SELECT a FROM t WHERE NOT (a = NULL)", ""},        // NOT unknown = unknown
		{"SELECT SUM(a) FROM t", "4"},                       //
		{"SELECT AVG(a) FROM t", "2"},                       //
		{"SELECT MIN(a), MAX(a) FROM t", "1,3"},             //
		{"SELECT COALESCE(a, -1) FROM t", "1;-1;3"},         //
		{"SELECT IFNULL(a, 0) FROM t WHERE a IS NULL", "0"}, //
	}
	for _, c := range cases {
		if got := flat(mustQuery(t, db, c.sql)); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (3,'c'),(1,'a'),(2,'b'),(2,'z')")
	cases := []struct{ sql, want string }{
		{"SELECT a FROM t ORDER BY a", "1;2;2;3"},
		{"SELECT a FROM t ORDER BY a DESC", "3;2;2;1"},
		{"SELECT a, b FROM t ORDER BY a ASC, b DESC", "1,a;2,z;2,b;3,c"},
		{"SELECT a FROM t ORDER BY a LIMIT 2", "1;2"},
		{"SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 1", "2;2"},
		{"SELECT a FROM t ORDER BY a LIMIT 1, 2", "2;2"},
		{"SELECT a FROM t ORDER BY 1 DESC LIMIT 1", "3"},
		{"SELECT b FROM t ORDER BY b DESC LIMIT 1", "z"},
		{"SELECT a AS x FROM t ORDER BY x DESC LIMIT 1", "3"},
	}
	for _, c := range cases {
		if got := flat(mustQuery(t, db, c.sql)); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestGroupByHaving(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE sales (region TEXT, amount INTEGER)")
	mustExec(t, db, `INSERT INTO sales VALUES
		('north', 10), ('north', 20), ('south', 5), ('east', 7), ('east', 1)`)
	cases := []struct{ sql, want string }{
		{"SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY region", "east,8;north,30;south,5"},
		{"SELECT region, COUNT(*) FROM sales GROUP BY region HAVING COUNT(*) > 1 ORDER BY region", "east,2;north,2"},
		{"SELECT region FROM sales GROUP BY region HAVING SUM(amount) >= 8 ORDER BY region", "east;north"},
		{"SELECT COUNT(DISTINCT region) FROM sales", "3"},
		{"SELECT MAX(amount) - MIN(amount) FROM sales", "19"},
		{"SELECT region, AVG(amount) FROM sales GROUP BY region HAVING AVG(amount) > 6 ORDER BY region", "north,15"},
	}
	for _, c := range cases {
		if got := flat(mustQuery(t, db, c.sql)); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestGlobalAggregateOverEmptyTable(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	if got := flat(mustQuery(t, db, "SELECT COUNT(*), SUM(a), MAX(a) FROM t")); got != "0,NULL,NULL" {
		t.Fatalf("got %q", got)
	}
	// But GROUP BY over an empty table yields no groups.
	if got := flat(mustQuery(t, db, "SELECT a, COUNT(*) FROM t GROUP BY a")); got != "" {
		t.Fatalf("got %q", got)
	}
}

func TestDistinct(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1,'x'),(1,'x'),(2,'y'),(1,'z')")
	if got := flat(mustQuery(t, db, "SELECT DISTINCT a, b FROM t ORDER BY a, b")); got != "1,x;1,z;2,y" {
		t.Fatalf("got %q", got)
	}
	if got := flat(mustQuery(t, db, "SELECT DISTINCT a FROM t ORDER BY a")); got != "1;2" {
		t.Fatalf("got %q", got)
	}
}

func TestJoins(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE users (id INTEGER, name TEXT)")
	mustExec(t, db, "CREATE TABLE orders (uid INTEGER, item TEXT)")
	mustExec(t, db, "INSERT INTO users VALUES (1,'ann'),(2,'bob'),(3,'carol')")
	mustExec(t, db, "INSERT INTO orders VALUES (1,'pen'),(1,'ink'),(3,'hat')")
	cases := []struct{ sql, want string }{
		{"SELECT u.name, o.item FROM users u JOIN orders o ON o.uid = u.id ORDER BY u.name, o.item",
			"ann,ink;ann,pen;carol,hat"},
		{"SELECT u.name, o.item FROM users u LEFT JOIN orders o ON o.uid = u.id ORDER BY u.name, o.item",
			"ann,ink;ann,pen;bob,NULL;carol,hat"},
		{"SELECT COUNT(*) FROM users, orders", "9"},
		{"SELECT COUNT(*) FROM users CROSS JOIN orders", "9"},
		{"SELECT u.name FROM users u INNER JOIN orders o ON o.uid = u.id AND o.item = 'hat'", "carol"},
	}
	for _, c := range cases {
		if got := flat(mustQuery(t, db, c.sql)); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestNaturalJoin(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (id INTEGER, x TEXT)")
	mustExec(t, db, "CREATE TABLE b (id INTEGER, y TEXT)")
	mustExec(t, db, "INSERT INTO a VALUES (1,'x1'),(2,'x2')")
	mustExec(t, db, "INSERT INTO b VALUES (1,'y1'),(1,'y1b'),(3,'y3')")
	res := mustQuery(t, db, "SELECT id, x, y FROM a NATURAL JOIN b ORDER BY y")
	if got := flat(res); got != "1,x1,y1;1,x1,y1b" {
		t.Fatalf("got %q", got)
	}
	// The shared column appears only once.
	res = mustQuery(t, db, "SELECT * FROM a NATURAL JOIN b ORDER BY y")
	if len(res.Columns) != 3 {
		t.Fatalf("columns = %v, want 3 (id deduplicated)", res.Columns)
	}
}

func TestSubqueries(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (grp TEXT, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES ('a',1),('a',5),('b',2),('b',8)")
	cases := []struct{ sql, want string }{
		// Scalar subquery.
		{"SELECT (SELECT MAX(v) FROM t)", "8"},
		// Correlated scalar subquery.
		{"SELECT grp, v FROM t o WHERE v = (SELECT MAX(v) FROM t i WHERE i.grp = o.grp) ORDER BY grp",
			"a,5;b,8"},
		// IN subquery.
		{"SELECT v FROM t WHERE grp IN (SELECT grp FROM t WHERE v > 7) ORDER BY v", "2;8"},
		// NOT IN with GROUP BY subquery (the Git trimming pattern).
		{"SELECT v FROM t WHERE v NOT IN (SELECT MAX(v) FROM t GROUP BY grp) ORDER BY v", "1;2"},
		// EXISTS / NOT EXISTS, correlated.
		{"SELECT DISTINCT grp FROM t o WHERE EXISTS (SELECT 1 FROM t i WHERE i.grp = o.grp AND i.v > 7)", "b"},
		{"SELECT DISTINCT grp FROM t o WHERE NOT EXISTS (SELECT 1 FROM t i WHERE i.grp = o.grp AND i.v > 7)", "a"},
		// Scalar subquery yielding no row is NULL.
		{"SELECT v FROM t WHERE v = (SELECT v FROM t WHERE v > 100)", ""},
		// Subquery in FROM.
		{"SELECT m FROM (SELECT MAX(v) AS m FROM t GROUP BY grp) sub ORDER BY m", "5;8"},
		// Correlated subquery with ORDER BY ... LIMIT (Git soundness pattern).
		{"SELECT grp FROM t o WHERE v != (SELECT i.v FROM t i WHERE i.grp = o.grp ORDER BY i.v DESC LIMIT 1) ORDER BY grp",
			"a;b"},
	}
	for _, c := range cases {
		if got := flat(mustQuery(t, db, c.sql)); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestViews(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (grp TEXT, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES ('a',1),('a',5),('b',2)")
	mustExec(t, db, "CREATE VIEW sums AS SELECT grp, SUM(v) AS total FROM t GROUP BY grp")
	if got := flat(mustQuery(t, db, "SELECT grp, total FROM sums ORDER BY grp")); got != "a,6;b,2" {
		t.Fatalf("got %q", got)
	}
	// Views reflect base-table changes.
	mustExec(t, db, "INSERT INTO t VALUES ('b',10)")
	if got := flat(mustQuery(t, db, "SELECT total FROM sums WHERE grp = 'b'")); got != "12" {
		t.Fatalf("got %q", got)
	}
	// Views can be joined and aliased.
	if got := flat(mustQuery(t, db, "SELECT s.total FROM sums s WHERE s.grp = 'a'")); got != "6" {
		t.Fatalf("got %q", got)
	}
	mustExec(t, db, "DROP VIEW sums")
	if _, err := db.Query("SELECT * FROM sums"); err == nil {
		t.Fatal("view still queryable after DROP")
	}
}

func TestUpdateDelete(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1,'x'),(2,'y'),(3,'z')")
	if n := mustExec(t, db, "UPDATE t SET b = 'q' WHERE a >= 2"); n != 2 {
		t.Fatalf("updated %d, want 2", n)
	}
	if got := flat(mustQuery(t, db, "SELECT b FROM t ORDER BY a")); got != "x;q;q" {
		t.Fatalf("got %q", got)
	}
	if n := mustExec(t, db, "UPDATE t SET a = a + 10"); n != 3 {
		t.Fatalf("updated %d, want 3", n)
	}
	if n := mustExec(t, db, "DELETE FROM t WHERE a = 12"); n != 1 {
		t.Fatalf("deleted %d, want 1", n)
	}
	if n := mustExec(t, db, "DELETE FROM t"); n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	if got, _ := db.TableRowCount("t"); got != 0 {
		t.Fatalf("rows = %d, want 0", got)
	}
}

func TestDeleteWithSubquerySeesSnapshot(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE u (repo TEXT, branch TEXT, time INTEGER)")
	mustExec(t, db, `INSERT INTO u VALUES
		('r','main',1),('r','main',2),('r','dev',1),('r','dev',3),('s','main',5)`)
	// The Git trimming query: keep only the most recent update per branch.
	n := mustExec(t, db, `DELETE FROM u WHERE time NOT IN
		(SELECT MAX(time) FROM u GROUP BY repo, branch)`)
	if n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	got := flat(mustQuery(t, db, "SELECT repo, branch, time FROM u ORDER BY repo, branch"))
	if got != "r,dev,3;r,main,2;s,main,5" {
		t.Fatalf("got %q", got)
	}
}

func TestCompoundSelects(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE a (v INTEGER)")
	mustExec(t, db, "CREATE TABLE b (v INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1),(2),(3)")
	mustExec(t, db, "INSERT INTO b VALUES (2),(3),(4)")
	cases := []struct{ sql, want string }{
		{"SELECT v FROM a UNION SELECT v FROM b ORDER BY v", "1;2;3;4"},
		{"SELECT v FROM a UNION ALL SELECT v FROM b ORDER BY v", "1;2;2;3;3;4"},
		{"SELECT v FROM a EXCEPT SELECT v FROM b", "1"},
		{"SELECT v FROM a INTERSECT SELECT v FROM b ORDER BY v", "2;3"},
		{"SELECT v FROM a UNION SELECT v FROM b ORDER BY v DESC LIMIT 2", "4;3"},
	}
	for _, c := range cases {
		if got := flat(mustQuery(t, db, c.sql)); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestLike(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('hello'),('help'),('world'),('HELLO')")
	cases := []struct{ sql, want string }{
		{"SELECT s FROM t WHERE s LIKE 'hel%' ORDER BY s", "HELLO;hello;help"},
		{"SELECT s FROM t WHERE s LIKE '%orl%'", "world"},
		{"SELECT s FROM t WHERE s LIKE 'hel_'", "help"},
		{"SELECT s FROM t WHERE s NOT LIKE 'hel%'", "world"},
	}
	for _, c := range cases {
		if got := flat(mustQuery(t, db, c.sql)); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestCaseExpr(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(2),(3)")
	got := flat(mustQuery(t, db, `SELECT CASE WHEN v < 2 THEN 'low' WHEN v = 2 THEN 'mid' ELSE 'high' END FROM t ORDER BY v`))
	if got != "low;mid;high" {
		t.Fatalf("got %q", got)
	}
	got = flat(mustQuery(t, db, `SELECT CASE v WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t ORDER BY v`))
	if got != "one;two;NULL" {
		t.Fatalf("got %q", got)
	}
}

func TestCast(t *testing.T) {
	db := New()
	got := flat(mustQuery(t, db, "SELECT CAST('42' AS INTEGER), CAST(3 AS TEXT), CAST(5 AS REAL)"))
	if got != "42,3,5" {
		t.Fatalf("got %q", got)
	}
	res := mustQuery(t, db, "SELECT CAST(5 AS REAL)")
	if res.Rows[0][0].Kind() != KindFloat {
		t.Fatalf("kind = %v, want REAL", res.Rows[0][0].Kind())
	}
}

func TestStringFunctions(t *testing.T) {
	db := New()
	cases := []struct{ sql, want string }{
		{"SELECT LENGTH('hello')", "5"},
		{"SELECT UPPER('abc'), LOWER('ABC')", "ABC,abc"},
		{"SELECT SUBSTR('hello', 2, 3)", "ell"},
		{"SELECT SUBSTR('hello', 2)", "ello"},
		{"SELECT 'a' || 'b' || 'c'", "abc"},
		{"SELECT ABS(-7), ABS(7)", "7,7"},
		{"SELECT NULLIF(1, 1), NULLIF(1, 2)", "NULL,1"},
	}
	for _, c := range cases {
		if got := flat(mustQuery(t, db, c.sql)); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestTypeAffinity(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (i INTEGER, r REAL, s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('7', 3, 42)")
	res := mustQuery(t, db, "SELECT i, r, s FROM t")
	row := res.Rows[0]
	if row[0].Kind() != KindInt || row[0].Int64() != 7 {
		t.Errorf("i = %v (%v), want INTEGER 7", row[0], row[0].Kind())
	}
	if row[1].Kind() != KindFloat {
		t.Errorf("r kind = %v, want REAL", row[1].Kind())
	}
	if row[2].Kind() != KindText || row[2].TextVal() != "42" {
		t.Errorf("s = %v (%v), want TEXT '42'", row[2], row[2].Kind())
	}
}

func TestErrorCases(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	for _, sql := range []string{
		"SELECT * FROM missing",
		"SELECT nope FROM t",
		"INSERT INTO missing VALUES (1)",
		"INSERT INTO t (nope) VALUES (1)",
		"DELETE FROM missing",
		"UPDATE missing SET a = 1",
		"SELECT a FROM t ORDER BY 9",
		"SELECT",
		"CREATE TABLE t (a INTEGER)", // duplicate
		"SELECT a FROM t WHERE",
		"SELECT MAX(a, a) FROM t",
		"SELECT a FROM t GROUP BY",
	} {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", sql)
		}
	}
	if _, err := db.Query("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("Query with non-SELECT succeeded")
	}
}

func TestCreateIfNotExistsAndDropIfExists(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS t (a INTEGER)")
	mustExec(t, db, "DROP TABLE IF EXISTS missing")
	mustExec(t, db, "DROP TABLE t")
	if _, err := db.Exec("DROP TABLE t"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("err = %v, want ErrNoSuchTable", err)
	}
}

func TestPreparedStatements(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	ins, err := db.Prepare("INSERT INTO t VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ins.Exec(i, "row"); err != nil {
			t.Fatal(err)
		}
	}
	q, err := db.Prepare("SELECT COUNT(*) FROM t WHERE a < ?")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].Int64(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
}

func TestMultiStatementScript(t *testing.T) {
	db := New()
	n := mustExec(t, db, `
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1);
		INSERT INTO t VALUES (2), (3);
	`)
	if n != 3 {
		t.Fatalf("affected = %d, want 3", n)
	}
}

func TestQuotedIdentifiersAndComments(t *testing.T) {
	db := New()
	mustExec(t, db, `CREATE TABLE "order" (a INTEGER) -- trailing comment`)
	mustExec(t, db, "INSERT INTO `order` VALUES (1) /* block comment */")
	if got := flat(mustQuery(t, db, `SELECT a FROM "order"`)); got != "1" {
		t.Fatalf("got %q", got)
	}
}

func TestStringEscapes(t *testing.T) {
	db := New()
	if got := flat(mustQuery(t, db, "SELECT 'it''s'")); got != "it's" {
		t.Fatalf("got %q", got)
	}
}

func TestInsertFromSelect(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE src (a INTEGER)")
	mustExec(t, db, "CREATE TABLE dst (a INTEGER)")
	mustExec(t, db, "INSERT INTO src VALUES (1),(2),(3)")
	if n := mustExec(t, db, "INSERT INTO dst SELECT a FROM src WHERE a > 1"); n != 2 {
		t.Fatalf("inserted %d, want 2", n)
	}
	if got := flat(mustQuery(t, db, "SELECT a FROM dst ORDER BY a")); got != "2;3" {
		t.Fatalf("got %q", got)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := New()
	if got := flat(mustQuery(t, db, "SELECT 1+1, 'x'")); got != "2,x" {
		t.Fatalf("got %q", got)
	}
}
