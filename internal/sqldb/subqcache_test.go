package sqldb

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildRandomAuditDB creates a Git-schema database with random rows.
func buildRandomAuditDB(t *testing.T, r *rand.Rand, rows int) *DB {
	t.Helper()
	db := New()
	if _, err := db.Exec(`
		CREATE TABLE updates (time INTEGER, repo TEXT, branch TEXT, cid TEXT, type TEXT);
		CREATE TABLE advertisements (time INTEGER, repo TEXT, branch TEXT, cid TEXT);
	`); err != nil {
		t.Fatal(err)
	}
	repos := []string{"r1", "r2"}
	branches := []string{"main", "dev", "feat"}
	types := []string{"update", "create", "delete"}
	for i := 0; i < rows; i++ {
		repo := repos[r.Intn(len(repos))]
		branch := branches[r.Intn(len(branches))]
		cid := fmt.Sprintf("c%d", r.Intn(8))
		if r.Intn(4) == 0 {
			if _, err := db.Exec("INSERT INTO advertisements VALUES (?,?,?,?)",
				i, repo, branch, cid); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := db.Exec("INSERT INTO updates VALUES (?,?,?,?,?)",
				i, repo, branch, cid, types[r.Intn(len(types))]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// queryWithCacheMode runs a SELECT with the subquery cache enabled or
// disabled (white-box).
func queryWithCacheMode(t *testing.T, db *DB, sql string, nocache bool) *Result {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("not a select: %q", sql)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	ev := db.evaluator(nil)
	ev.nocache = nocache
	res, err := ev.execSelect(sel, nil)
	if err != nil {
		t.Fatalf("%q: %v", sql, err)
	}
	return res
}

// TestSubqueryCacheEquivalence checks, over many random databases, that the
// correlated-subquery cache never changes query results.
func TestSubqueryCacheEquivalence(t *testing.T) {
	queries := []string{
		// Correlated scalar subquery with ORDER BY/LIMIT (Git soundness).
		`SELECT * FROM advertisements a WHERE cid != (
			SELECT u.cid FROM updates u WHERE u.repo = a.repo AND
			u.branch = a.branch AND u.time < a.time ORDER BY u.time DESC LIMIT 1)`,
		// Correlated MAX subquery inside a join condition context.
		`SELECT a.time, a.repo FROM advertisements a JOIN updates u
			ON u.repo = a.repo AND u.time < a.time
			WHERE u.time = (SELECT MAX(time) FROM updates
				WHERE branch = u.branch AND repo = u.repo AND time < a.time)
			ORDER BY a.time, a.repo`,
		// Uncorrelated IN subquery.
		`SELECT time FROM updates WHERE time NOT IN
			(SELECT MAX(time) FROM updates GROUP BY repo, branch) ORDER BY time`,
		// EXISTS with correlation.
		`SELECT DISTINCT repo FROM updates o WHERE EXISTS
			(SELECT 1 FROM advertisements i WHERE i.repo = o.repo) ORDER BY repo`,
		// Nested correlation two levels deep.
		`SELECT time FROM advertisements a WHERE EXISTS (
			SELECT 1 FROM updates u WHERE u.repo = a.repo AND u.cid = (
				SELECT MAX(cid) FROM updates WHERE branch = u.branch))
			ORDER BY time`,
	}
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := buildRandomAuditDB(t, r, 60)
		for _, q := range queries {
			cached := queryWithCacheMode(t, db, q, false)
			plain := queryWithCacheMode(t, db, q, true)
			if flat(cached) != flat(plain) {
				t.Fatalf("seed %d query %q:\ncached: %s\nplain:  %s",
					seed, q, flat(cached), flat(plain))
			}
		}
	}
}

func TestSubqueryCacheHitCount(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	db := buildRandomAuditDB(t, r, 120)
	st, _ := Parse(`SELECT a.time FROM advertisements a JOIN updates u
		ON u.repo = a.repo AND u.time < a.time
		WHERE u.time = (SELECT MAX(time) FROM updates
			WHERE branch = u.branch AND repo = u.repo AND time < a.time)`)
	sel := st.(*SelectStmt)
	db.mu.RLock()
	defer db.mu.RUnlock()
	ev := db.evaluator(nil)
	if _, err := ev.execSelect(sel, nil); err != nil {
		t.Fatal(err)
	}
	// The cache must have been exercised and hold far fewer entries than
	// the number of (a,u) pairs it was consulted for.
	if len(ev.subq) == 0 {
		t.Fatal("no subquery cache entries created")
	}
	for _, info := range ev.subq {
		if info.uncachable {
			t.Fatal("paper query classified uncachable")
		}
		if len(info.free) == 0 {
			t.Fatal("correlated subquery detected no free variables")
		}
	}
}

func TestFreeVarAnalysis(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "CREATE TABLE u (c INTEGER, d INTEGER)")
	cases := []struct {
		sub      string
		wantFree int
	}{
		{"SELECT MAX(c) FROM u", 0},                                       // self-contained
		{"SELECT MAX(c) FROM u WHERE d = t.a", 1},                         // one free var
		{"SELECT MAX(c) FROM u WHERE d = t.a + t.b", 2},                   // two
		{"SELECT c FROM u WHERE d IN (SELECT b FROM t WHERE a = u.c)", 0}, // inner binds everything
	}
	for _, c := range cases {
		st, err := Parse(c.sub)
		if err != nil {
			t.Fatalf("%q: %v", c.sub, err)
		}
		db.mu.RLock()
		ev := db.evaluator(nil)
		free, err := ev.freeVars(st.(*SelectStmt), nil)
		db.mu.RUnlock()
		if err != nil {
			t.Fatalf("%q: %v", c.sub, err)
		}
		seen := map[freeRef]bool{}
		uniq := 0
		for _, f := range free {
			if !seen[f] {
				seen[f] = true
				uniq++
			}
		}
		if uniq != c.wantFree {
			t.Errorf("%q: free vars = %v, want %d", c.sub, free, c.wantFree)
		}
	}
}

func TestUpdateDisablesCache(t *testing.T) {
	// UPDATE with a correlated subquery over the same table must see fresh
	// values per row, not cached ones.
	db := New()
	mustExec(t, db, "CREATE TABLE t (id INTEGER, v INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
	// Set every row's v to the current maximum v. With stale caching the
	// later rows could observe an already-updated max.
	mustExec(t, db, "UPDATE t SET v = (SELECT MAX(v) FROM t)")
	res := mustQuery(t, db, "SELECT DISTINCT v FROM t")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
