package sqldb

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString
	tkParam // ?
	tkOp    // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased, identifiers as written
	pos  int
}

// keywords recognised by the dialect. Identifiers matching these (case
// insensitively) lex as tkKeyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"ASC": true, "DESC": true, "DISTINCT": true, "ALL": true, "AS": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "CROSS": true,
	"NATURAL": true, "ON": true, "AND": true, "OR": true, "NOT": true,
	"IN": true, "IS": true, "NULL": true, "LIKE": true, "BETWEEN": true,
	"EXISTS": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "CREATE": true, "TABLE": true, "VIEW": true, "DROP": true,
	"IF": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "INTEGER": true,
	"INT": true, "TEXT": true, "REAL": true, "BLOB": true, "PRIMARY": true,
	"KEY": true, "UNIQUE": true, "DEFAULT": true, "BEGIN": true,
	"COMMIT": true, "ROLLBACK": true, "UNION": true, "EXCEPT": true,
	"INTERSECT": true, "CAST": true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("sqldb: parse error at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, l.errf(l.pos, "unterminated comment")
			}
			l.pos += 2 + end + 2
		default:
			goto scan
		}
	}
	return token{kind: tkEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tkKeyword, text: up, pos: start}, nil
		}
		return token{kind: tkIdent, text: word, pos: start}, nil

	case c == '"' || c == '`': // quoted identifier
		quote := c
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated quoted identifier")
			}
			ch := l.src[l.pos]
			if ch == quote {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					sb.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{kind: tkIdent, text: sb.String(), pos: start}, nil

	case c >= '0' && c <= '9' || (c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
		l.pos++
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
			l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			((l.src[l.pos] == '+' || l.src[l.pos] == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.pos++
		}
		return token{kind: tkNumber, text: l.src[start:l.pos], pos: start}, nil

	case c == '\'': // string literal; '' escapes a quote
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{kind: tkString, text: sb.String(), pos: start}, nil

	case c == '?':
		l.pos++
		return token{kind: tkParam, text: "?", pos: start}, nil

	default:
		// Multi-char operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "!=", "<>", "<=", ">=", "||", "==":
			l.pos += 2
			if two == "<>" {
				two = "!="
			}
			if two == "==" {
				two = "="
			}
			return token{kind: tkOp, text: two, pos: start}, nil
		}
		switch c {
		case '(', ')', ',', ';', '*', '+', '-', '/', '%', '=', '<', '>', '.':
			l.pos++
			return token{kind: tkOp, text: string(c), pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lexAll tokenises an entire statement.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tkEOF {
			return toks, nil
		}
	}
}
