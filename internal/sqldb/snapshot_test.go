package sqldb

import (
	"sync"
	"testing"
)

func snapCount(t *testing.T, s *Snapshot, sql string) int64 {
	t.Helper()
	res, err := s.Query(sql)
	if err != nil {
		t.Fatalf("snapshot Query(%q): %v", sql, err)
	}
	return res.Rows[0][0].Int64()
}

func TestSnapshotIsolatedFromInsert(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2)")
	snap := db.Snapshot()
	mustExec(t, db, "INSERT INTO t VALUES (3)")
	if n := snapCount(t, snap, "SELECT COUNT(*) FROM t"); n != 2 {
		t.Fatalf("snapshot sees %d rows after live INSERT, want 2", n)
	}
	if res := mustQuery(t, db, "SELECT a FROM t"); flat(res) != "1;2;3" {
		t.Fatalf("live table = %q", flat(res))
	}
}

func TestSnapshotIsolatedFromUpdate(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1,'old'), (2,'old')")
	snap := db.Snapshot()
	mustExec(t, db, "UPDATE t SET b = 'new' WHERE a = 1")
	res, err := snap.Query("SELECT b FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if flat(res) != "old;old" {
		t.Fatalf("snapshot = %q after live UPDATE, want old;old", flat(res))
	}
	if res := mustQuery(t, db, "SELECT b FROM t ORDER BY a"); flat(res) != "new;old" {
		t.Fatalf("live = %q", flat(res))
	}
}

func TestSnapshotIsolatedFromDelete(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	snap := db.Snapshot()
	mustExec(t, db, "DELETE FROM t WHERE a < 3")
	if n := snapCount(t, snap, "SELECT COUNT(*) FROM t"); n != 3 {
		t.Fatalf("snapshot sees %d rows after live DELETE, want 3", n)
	}
}

// The truncation hazard: RemoveLastRows shortens the shared array, and a
// later INSERT would overwrite the truncated suffix in place if the writer
// did not clip capacity while the table is shared.
func TestSnapshotIsolatedFromTruncateThenInsert(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	snap := db.Snapshot()
	if err := db.RemoveLastRows("t", 2); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO t VALUES (99), (98)")
	res, err := snap.Query("SELECT a FROM t ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	if flat(res) != "1;2;3" {
		t.Fatalf("snapshot = %q after truncate+reinsert, want 1;2;3", flat(res))
	}
	if res := mustQuery(t, db, "SELECT a FROM t ORDER BY a"); flat(res) != "1;98;99" {
		t.Fatalf("live = %q", flat(res))
	}
}

func TestSnapshotQueryStmtWithParams(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1,'x'), (2,'y')")
	stmt, err := db.Prepare("SELECT b FROM t WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot()
	mustExec(t, db, "UPDATE t SET b = 'gone' WHERE a = 2")
	res, err := snap.QueryStmt(stmt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if flat(res) != "y" {
		t.Fatalf("QueryStmt = %q, want y", flat(res))
	}
}

func TestSnapshotCountMatches(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	snap := db.Snapshot()

	del, err := db.Prepare("DELETE FROM t WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok, err := snap.CountMatches(del); err != nil || !ok || n != 2 {
		t.Fatalf("CountMatches(WHERE a>1) = %d,%v,%v want 2,true,nil", n, ok, err)
	}
	all, err := db.Prepare("DELETE FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok, err := snap.CountMatches(all); err != nil || !ok || n != 3 {
		t.Fatalf("CountMatches(all) = %d,%v,%v want 3,true,nil", n, ok, err)
	}
	sel, err := db.Prepare("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := snap.CountMatches(sel); ok || err != nil {
		t.Fatalf("CountMatches(SELECT) ok=%v err=%v, want false,nil", ok, err)
	}
	// Probing must not mutate.
	if n := snapCount(t, snap, "SELECT COUNT(*) FROM t"); n != 3 {
		t.Fatalf("snapshot mutated by CountMatches: %d rows", n)
	}
}

// Writers mutate continuously while snapshots are captured and queried.
// Each snapshot must see a consistent instant: the live seqs always form
// the contiguous range [min, max] (INSERT appends at the top, DELETE takes
// from the bottom), and flip is always either seq or seq+1000000 (UPDATE
// replaces whole rows, never tears them). Run under -race.
func TestSnapshotConsistentUnderConcurrentWriters(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE t (seq INTEGER, flip INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (0, 0)")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			seq++
			if _, err := db.Exec("INSERT INTO t VALUES (?, ?)", seq, seq); err != nil {
				t.Error(err)
				return
			}
			if seq%5 == 0 {
				if _, err := db.Exec("UPDATE t SET flip = seq + 1000000 WHERE seq > ?", seq-3); err != nil {
					t.Error(err)
					return
				}
			}
			if seq%17 == 0 {
				if _, err := db.Exec("DELETE FROM t WHERE seq < ?", seq-30); err != nil {
					t.Error(err)
					return
				}
			}
			if seq%23 == 0 {
				if err := db.RemoveLastRows("t", 1); err != nil {
					t.Error(err)
					return
				}
				seq--
			}
		}
	}()

	for i := 0; i < 300; i++ {
		snap := db.Snapshot()
		res, err := snap.Query("SELECT COUNT(*), MIN(seq), MAX(seq) FROM t")
		if err != nil {
			t.Fatal(err)
		}
		count, min, max := res.Rows[0][0].Int64(), res.Rows[0][1].Int64(), res.Rows[0][2].Int64()
		if count != max-min+1 {
			t.Fatalf("snapshot %d inconsistent: count=%d range [%d,%d]", i, count, min, max)
		}
		torn, err := snap.Query(
			"SELECT COUNT(*) FROM t WHERE flip != seq AND flip != seq + 1000000")
		if err != nil {
			t.Fatal(err)
		}
		if n := torn.Rows[0][0].Int64(); n != 0 {
			t.Fatalf("snapshot %d saw %d torn rows", i, n)
		}
	}
	close(stop)
	wg.Wait()
}
