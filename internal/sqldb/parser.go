package sqldb

import (
	"fmt"
	"strconv"
	"strings"
)

type parser struct {
	toks   []token
	pos    int
	params int // running count of `?` placeholders
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(sql string) (Statement, error) {
	stmts, err := ParseAll(sql)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqldb: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(sql string) ([]Statement, error) {
	toks, err := lexAll(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Statement
	for {
		for p.acceptOp(";") {
		}
		if p.peek().kind == tkEOF {
			return stmts, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptOp(";") && p.peek().kind != tkEOF {
			return nil, p.errHere("expected ';' or end of input")
		}
	}
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errHere(format string, args ...any) error {
	t := p.peek()
	what := t.text
	if t.kind == tkEOF {
		what = "end of input"
	}
	return fmt.Errorf("sqldb: parse error near %q (offset %d): %s", what, t.pos, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKw(kw string) bool {
	if t := p.peek(); t.kind == tkKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errHere("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.kind == tkOp && t.text == op {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errHere("expected %q", op)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind == tkIdent {
		p.advance()
		return t.text, nil
	}
	return "", p.errHere("expected identifier")
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tkKeyword {
		return nil, p.errHere("expected statement keyword")
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	default:
		return nil, p.errHere("unsupported statement %s", t.text)
	}
}

func (p *parser) parseCreate() (Statement, error) {
	p.advance() // CREATE
	switch {
	case p.acceptKw("TABLE"):
		st := &CreateTableStmt{}
		if p.acceptKw("IF") {
			if err := p.expectKw("NOT"); err != nil {
				return nil, err
			}
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			st.IfNotExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Name = name
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			def := ColumnDef{Name: col}
			// Optional type affinity.
			switch {
			case p.acceptKw("INTEGER"), p.acceptKw("INT"):
				def.Type = KindInt
			case p.acceptKw("TEXT"):
				def.Type = KindText
			case p.acceptKw("REAL"):
				def.Type = KindFloat
			case p.acceptKw("BLOB"):
				def.Type = KindBlob
			}
			// Accept and ignore common constraints.
			for {
				switch {
				case p.acceptKw("PRIMARY"):
					if err := p.expectKw("KEY"); err != nil {
						return nil, err
					}
				case p.acceptKw("UNIQUE"):
				case p.acceptKw("NOT"):
					if err := p.expectKw("NULL"); err != nil {
						return nil, err
					}
				case p.acceptKw("DEFAULT"):
					if _, err := p.parsePrimary(); err != nil {
						return nil, err
					}
				default:
					goto colDone
				}
			}
		colDone:
			st.Cols = append(st.Cols, def)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return st, nil

	case p.acceptKw("VIEW"):
		st := &CreateViewStmt{}
		if p.acceptKw("IF") {
			if err := p.expectKw("NOT"); err != nil {
				return nil, err
			}
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			st.IfNotExists = true
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Name = name
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel
		return st, nil
	}
	return nil, p.errHere("expected TABLE or VIEW after CREATE")
}

func (p *parser) parseDrop() (Statement, error) {
	p.advance() // DROP
	st := &DropStmt{}
	switch {
	case p.acceptKw("TABLE"):
	case p.acceptKw("VIEW"):
		st.View = true
	default:
		return nil, p.errHere("expected TABLE or VIEW after DROP")
	}
	if p.acceptKw("IF") {
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	st := &InsertStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.acceptOp("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if p.peek().kind == tkKeyword && p.peek().text == "SELECT" {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Select = sel
		return st, nil
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.advance() // UPDATE
	st := &UpdateStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, Assign{Col: col, Expr: e})
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	st := &DeleteStmt{}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// parseSelect parses a full select including compound operators and the
// trailing ORDER BY / LIMIT, which apply to the compound result.
func (p *parser) parseSelect() (*SelectStmt, error) {
	st, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	for {
		var op CompoundOp
		switch {
		case p.acceptKw("UNION"):
			if p.acceptKw("ALL") {
				op = CompoundUnionAll
			} else {
				op = CompoundUnion
			}
		case p.acceptKw("EXCEPT"):
			op = CompoundExcept
		case p.acceptKw("INTERSECT"):
			op = CompoundIntersect
		default:
			goto tail
		}
		rhs, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		st.Compound = append(st.Compound, CompoundPart{Op: op, Select: rhs})
	}
tail:
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.acceptKw("DESC") {
				key.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			st.OrderBy = append(st.OrderBy, key)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Limit = e
		if p.acceptKw("OFFSET") {
			off, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Offset = off
		} else if p.acceptOp(",") { // LIMIT off, n
			n, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Offset = st.Limit
			st.Limit = n
		}
	}
	return st, nil
}

// parseSelectCore parses one SELECT ... [FROM ... WHERE ... GROUP BY ...
// HAVING ...] without compound/order/limit tails.
func (p *parser) parseSelectCore() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{}
	if p.acceptKw("DISTINCT") {
		st.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if p.acceptOp(",") {
			continue
		}
		break
	}
	if p.acceptKw("FROM") {
		from, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		st.From = from
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if p.acceptOp(",") {
				continue
			}
			break
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	return st, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form: ident '.' '*'
	if p.peek().kind == tkIdent && p.peek2().kind == tkOp && p.peek2().text == "." {
		save := p.pos
		name, _ := p.ident()
		p.acceptOp(".")
		if p.acceptOp("*") {
			return SelectItem{Star: true, StarTable: name}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKw("AS") {
		alias, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().kind == tkIdent {
		item.Alias = p.advance().text
	}
	return item, nil
}

// parseTableExpr parses a FROM clause: sources combined by commas and joins.
func (p *parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseTableSource()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp(","):
			right, err := p.parseTableSource()
			if err != nil {
				return nil, err
			}
			left = &JoinExpr{Kind: JoinCross, Left: left, Right: right}

		case p.peekJoin():
			join := &JoinExpr{Left: left}
			if p.acceptKw("NATURAL") {
				join.Natural = true
			}
			switch {
			case p.acceptKw("LEFT"):
				p.acceptKw("OUTER")
				join.Kind = JoinLeft
			case p.acceptKw("INNER"):
				join.Kind = JoinInner
			case p.acceptKw("CROSS"):
				join.Kind = JoinCross
			}
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTableSource()
			if err != nil {
				return nil, err
			}
			join.Right = right
			if !join.Natural && join.Kind != JoinCross && p.acceptKw("ON") {
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				join.On = on
			} else if join.Kind == JoinInner && !join.Natural && join.On == nil {
				// JOIN without ON behaves as a cross join.
				join.Kind = JoinCross
			}
			left = join

		default:
			return left, nil
		}
	}
}

func (p *parser) peekJoin() bool {
	t := p.peek()
	if t.kind != tkKeyword {
		return false
	}
	switch t.text {
	case "JOIN", "INNER", "LEFT", "CROSS", "NATURAL":
		return true
	}
	return false
}

func (p *parser) parseTableSource() (TableExpr, error) {
	if p.acceptOp("(") {
		if p.peek().kind == tkKeyword && p.peek().text == "SELECT" {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			sub := &SubqueryTable{Select: sel}
			if p.acceptKw("AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				sub.Alias = alias
			} else if p.peek().kind == tkIdent {
				sub.Alias = p.advance().text
			}
			return sub, nil
		}
		// Parenthesised join expression.
		te, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return te, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	tn := &TableName{Name: name}
	if p.acceptKw("AS") {
		alias, err := p.ident()
		if err != nil {
			return nil, err
		}
		tn.Alias = alias
	} else if p.peek().kind == tkIdent {
		tn.Alias = p.advance().text
	}
	return tn, nil
}

// Expression parsing: precedence climbing.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		// AND may terminate a BETWEEN, which parseComparison handles; at
		// this level a bare AND is always a conjunction.
		if !p.acceptKw("AND") {
			return left, nil
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", L: left, R: right}
	}
}

func (p *parser) parseNot() (Expr, error) {
	if t := p.peek(); t.kind == tkKeyword && t.text == "NOT" &&
		!(p.peek2().kind == tkKeyword && p.peek2().text == "EXISTS") {
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.kind == tkOp && (t.text == "=" || t.text == "!=" || t.text == "<" ||
			t.text == "<=" || t.text == ">" || t.text == ">="):
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: t.text, L: left, R: right}

		case t.kind == tkKeyword && t.text == "IS":
			p.advance()
			not := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{X: left, Not: not}

		case t.kind == tkKeyword && (t.text == "IN" || t.text == "LIKE" || t.text == "BETWEEN" || t.text == "NOT"):
			not := false
			if t.text == "NOT" {
				// Only treat NOT as a suffix operator if followed by
				// IN/LIKE/BETWEEN; otherwise it belongs to an outer NOT.
				nt := p.peek2()
				if nt.kind != tkKeyword || (nt.text != "IN" && nt.text != "LIKE" && nt.text != "BETWEEN") {
					return left, nil
				}
				p.advance()
				not = true
				t = p.peek()
			}
			switch t.text {
			case "IN":
				p.advance()
				in := &InExpr{X: left, Not: not}
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				if p.peek().kind == tkKeyword && p.peek().text == "SELECT" {
					sel, err := p.parseSelect()
					if err != nil {
						return nil, err
					}
					in.Select = sel
				} else {
					for {
						e, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						in.List = append(in.List, e)
						if p.acceptOp(",") {
							continue
						}
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				left = in
			case "LIKE":
				p.advance()
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &LikeExpr{X: left, Pattern: pat, Not: not}
			case "BETWEEN":
				p.advance()
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &BetweenExpr{X: left, Lo: lo, Hi: hi, Not: not}
			}

		default:
			return left, nil
		}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkOp && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.advance()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkOp && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.advance()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == tkOp && (t.text == "-" || t.text == "+") {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			return x, nil
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tkNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errHere("bad number %q", t.text)
			}
			return &Literal{Val: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errHere("bad number %q", t.text)
			}
			return &Literal{Val: Float(f)}, nil
		}
		return &Literal{Val: Int(n)}, nil

	case tkString:
		p.advance()
		return &Literal{Val: Text(t.text)}, nil

	case tkParam:
		p.advance()
		idx := p.params
		p.params++
		return &ParamExpr{Index: idx}, nil

	case tkKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &Literal{Val: Null()}, nil
		case "NOT":
			// NOT EXISTS reaches here via parseNot's carve-out.
			p.advance()
			if err := p.expectKw("EXISTS"); err != nil {
				return nil, err
			}
			return p.parseExists(true)
		case "EXISTS":
			p.advance()
			return p.parseExists(false)
		case "CASE":
			p.advance()
			return p.parseCase()
		case "CAST":
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			var kind Kind
			switch {
			case p.acceptKw("INTEGER"), p.acceptKw("INT"):
				kind = KindInt
			case p.acceptKw("TEXT"):
				kind = KindText
			case p.acceptKw("REAL"):
				kind = KindFloat
			case p.acceptKw("BLOB"):
				kind = KindBlob
			default:
				return nil, p.errHere("expected type in CAST")
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &CastExpr{X: x, Type: kind}, nil
		}
		return nil, p.errHere("unexpected keyword %s in expression", t.text)

	case tkIdent:
		p.advance()
		// Function call?
		if p.acceptOp("(") {
			fc := &FuncCall{Name: strings.ToUpper(t.text)}
			if p.acceptOp("*") {
				fc.Star = true
			} else if !p.acceptOp(")") {
				if p.acceptKw("DISTINCT") {
					fc.Distinct = true
				}
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, e)
					if p.acceptOp(",") {
						continue
					}
					break
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return fc, nil
			} else {
				return fc, nil // empty arg list
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified column?
		if p.acceptOp(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColExpr{Table: t.text, Name: col}, nil
		}
		return &ColExpr{Name: t.text}, nil

	case tkOp:
		if t.text == "(" {
			p.advance()
			if p.peek().kind == tkKeyword && p.peek().text == "SELECT" {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &SubqueryExpr{Select: sel}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errHere("unexpected token in expression")
}

func (p *parser) parseExists(not bool) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &ExistsExpr{Not: not, Select: sel}, nil
}

func (p *parser) parseCase() (Expr, error) {
	ce := &CaseExpr{}
	if !(p.peek().kind == tkKeyword && (p.peek().text == "WHEN" || p.peek().text == "ELSE" || p.peek().text == "END")) {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.acceptKw("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, When{Cond: cond, Result: res})
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	if len(ce.Whens) == 0 {
		return nil, p.errHere("CASE requires at least one WHEN")
	}
	return ce, nil
}
