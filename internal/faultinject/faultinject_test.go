package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"libseal/internal/rote"
	"libseal/internal/vfs"
)

func TestRuleWindows(t *testing.T) {
	in := Scenario{Seed: 1, Rules: []Rule{
		CrashNode(0, 2, 5),  // ops [2,5)
		TornWrite("log", 3), // exactly op 3
		{Target: "fs", Op: OpENOSPC, After: 7, Until: 8}, // wildcard fs target
	}}.Build()

	for i := 0; i < 8; i++ {
		fired := in.step("node:0")
		want := i >= 2 && i < 5
		if (len(fired) == 1) != want {
			t.Fatalf("node:0 op %d: fired=%v, want %v", i, fired, want)
		}
	}
	for i := 0; i < 8; i++ {
		fired := in.step("fs:log")
		switch {
		case i == 3:
			if len(fired) != 1 || fired[0].Op != OpTornWrite {
				t.Fatalf("fs:log op 3: fired=%v", fired)
			}
		case i == 7:
			if len(fired) != 1 || fired[0].Op != OpENOSPC {
				t.Fatalf("fs:log op 7 (wildcard): fired=%v", fired)
			}
		default:
			if len(fired) != 0 {
				t.Fatalf("fs:log op %d: fired=%v", i, fired)
			}
		}
	}
	if got := in.Count("node:0"); got != 8 {
		t.Fatalf("Count(node:0) = %d", got)
	}
	trace := in.Trace()
	want := []string{
		"node:0#2 crash", "node:0#3 crash", "node:0#4 crash",
		"fs:log#3 torn-write", "fs:log#7 enospc",
	}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q", i, trace[i], want[i])
		}
	}
}

func TestDeterministicTrace(t *testing.T) {
	// Count-based rules plus a probabilistic rule drawn in a fixed order
	// must reproduce the same trace from the same seed.
	scenario := Scenario{Seed: 42, Rules: []Rule{
		{Target: "link:a", Op: OpDrop, After: 0, Until: 50, Prob: 0.3},
		CrashNode(1, 5, 10),
	}}
	run := func() []string {
		in := scenario.Build()
		for i := 0; i < 50; i++ {
			in.step("link:a")
		}
		for i := 0; i < 12; i++ {
			in.step("node:1")
		}
		return in.Trace()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestFSTornWriteWedgesHandle(t *testing.T) {
	dir := t.TempDir()
	in := Scenario{Rules: []Rule{TornWrite("x.log", 1)}}.Build()
	fs := in.FS(nil)
	f, err := fs.Create(filepath.Join(dir, "x.log"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("head")); err != nil {
		t.Fatalf("write 0: %v", err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrTornWrite) {
		t.Fatalf("write 1: n=%d err=%v, want ErrTornWrite", n, err)
	}
	if n != 5 {
		t.Fatalf("torn write persisted %d bytes, want half (5)", n)
	}
	// The simulated process is dead: nothing further reaches the disk.
	if _, err := f.Write([]byte("more")); !errors.Is(err, ErrTornWrite) {
		t.Fatalf("write after tear: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrTornWrite) {
		t.Fatalf("sync after tear: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "x.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "head01234" {
		t.Fatalf("on-disk image = %q", data)
	}
}

func TestFSNoSpaceAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	in := Scenario{Rules: []Rule{
		NoSpace("x.log", 1, 2),
		CorruptWrite("x.log", 2),
	}}.Build()
	fs := in.FS(vfs.OS{})
	f, err := fs.Create(filepath.Join(dir, "x.log"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aa")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("bb")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	// Corruption reports success: the caller cannot see it.
	if _, err := f.Write([]byte("cccc")); err != nil {
		t.Fatalf("corrupt write should report success, got %v", err)
	}
	f.Close()
	data, _ := os.ReadFile(filepath.Join(dir, "x.log"))
	if string(data) == "aacccc" {
		t.Fatal("corrupt write was not corrupted")
	}
	if len(data) != 6 {
		t.Fatalf("on-disk image = %q", data)
	}
}

func TestNodeHookCrashWindow(t *testing.T) {
	g, err := rote.NewGroup(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := rote.DefaultRetryPolicy()
	p.Timeout = 200 * time.Millisecond
	p.Retries = 0
	g.SetRetryPolicy(p)

	// Crash nodes 0 and 1 (> f = 1) for their first operations: the quorum
	// is unreachable, so the increment must fail fast. After the window the
	// same increment value re-broadcasts and succeeds.
	in := Scenario{Rules: []Rule{
		CrashNode(0, 0, 1),
		CrashNode(1, 0, 1),
	}}.Build()
	in.AttachGroup(g)

	if _, err := g.Increment("c"); !errors.Is(err, rote.ErrNoQuorum) {
		t.Fatalf("increment under crashed quorum: %v, want ErrNoQuorum", err)
	}
	v, err := g.Increment("c")
	if err != nil {
		t.Fatalf("increment after recovery: %v", err)
	}
	if v != 2 {
		t.Fatalf("counter = %d, want 2", v)
	}
	if got, _ := g.Read("c"); got != 2 {
		t.Fatalf("read = %d, want 2", got)
	}
}

func TestNodeHookByzantineTolerated(t *testing.T) {
	g, err := rote.NewGroup(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One persistently byzantine node is within the f=1 budget: its badly
	// MACed replies are filtered and the quorum still forms.
	in := Scenario{Rules: []Rule{ByzantineNode(2, 0, 1<<30)}}.Build()
	in.AttachGroup(g)
	for i := 1; i <= 3; i++ {
		v, err := g.Increment("c")
		if err != nil {
			t.Fatalf("increment %d: %v", i, err)
		}
		if v != uint64(i) {
			t.Fatalf("counter = %d, want %d", v, i)
		}
	}
}
