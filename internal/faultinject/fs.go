package faultinject

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"libseal/internal/vfs"
)

// ErrTornWrite is returned by a write the injector tore: a prefix of the
// payload reached the disk, then the simulated machine died.
var ErrTornWrite = errors.New("faultinject: torn write (simulated crash)")

// FS wraps base (nil for the real filesystem) with the injector's
// "fs:<file>" rules. File write operations count per base filename.
func (in *Injector) FS(base vfs.FS) vfs.FS {
	return &faultyFS{in: in, base: vfs.Default(base)}
}

type faultyFS struct {
	in   *Injector
	base vfs.FS
}

func (f *faultyFS) wrap(file vfs.File, name string) vfs.File {
	return &faultyFile{in: f.in, target: "fs:" + filepath.Base(name), f: file}
}

func (f *faultyFS) Create(name string) (vfs.File, error) {
	file, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return f.wrap(file, name), nil
}

func (f *faultyFS) Append(name string) (vfs.File, error) {
	file, err := f.base.Append(name)
	if err != nil {
		return nil, err
	}
	return f.wrap(file, name), nil
}

func (f *faultyFS) ReadFile(name string) ([]byte, error) { return f.base.ReadFile(name) }
func (f *faultyFS) Rename(o, n string) error             { return f.base.Rename(o, n) }
func (f *faultyFS) Remove(name string) error             { return f.base.Remove(name) }

// faultyFile interposes on writes. After a torn write the handle is wedged:
// the simulated process died mid-write, so nothing further reaches disk.
type faultyFile struct {
	in     *Injector
	target string
	f      vfs.File

	mu     sync.Mutex
	wedged bool
}

func (f *faultyFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wedged {
		return 0, ErrTornWrite
	}
	for _, r := range f.in.step(f.target) {
		switch r.Op {
		case OpTornWrite:
			n := len(p) / 2
			if n > 0 {
				f.f.Write(p[:n])
			}
			f.f.Sync()
			f.wedged = true
			return n, ErrTornWrite
		case OpENOSPC:
			return 0, fmt.Errorf("faultinject: %w", syscall.ENOSPC)
		case OpCorrupt:
			q := append([]byte(nil), p...)
			if len(q) > 0 {
				q[len(q)/2] ^= 0xff
			}
			return f.f.Write(q)
		case OpStall:
			time.Sleep(r.Delay)
		}
	}
	return f.f.Write(p)
}

func (f *faultyFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wedged {
		return ErrTornWrite
	}
	return f.f.Sync()
}

func (f *faultyFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wedged {
		return ErrTornWrite
	}
	return f.f.Truncate(size)
}

func (f *faultyFile) Close() error { return f.f.Close() }
