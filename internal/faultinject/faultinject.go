// Package faultinject is a deterministic, seedable fault-injection layer
// for LibSEAL's chaos and robustness tests. It plugs into the existing
// seams of the system — netsim links (drops, resets, latency spikes,
// partitions), rote counter nodes (crash/recover schedules, Byzantine
// replies, slow replies) and the persistence filesystem (torn writes,
// silent corruption, ENOSPC) — and drives them from a declarative scenario
// spec, so a chaos run is reproducible from its seed and rule list.
//
// Faults trigger on per-target operation counts rather than wall-clock
// time: "crash node 2 for its ops [10, 30)" yields the same schedule on
// every run that performs the same operations, which is what lets the
// chaos soak test assert exact recovery outcomes.
package faultinject

import (
	"fmt"
	mathrand "math/rand"
	"strings"
	"sync"
	"time"

	"libseal/internal/netsim"
	"libseal/internal/rote"
)

// Op enumerates the injectable fault kinds.
type Op int

// Fault kinds. Link ops apply to "link:<addr>" targets, node ops to
// "node:<id>" targets, and filesystem ops to "fs:<file>" (or "fs") targets.
const (
	// OpDrop silently discards a link write.
	OpDrop Op = iota
	// OpReset fails a link write with a connection reset.
	OpReset
	// OpDelay adds latency to a link write.
	OpDelay
	// OpCrash makes a counter node unresponsive.
	OpCrash
	// OpByzantine makes a counter node reply with stale, badly-MACed state.
	OpByzantine
	// OpSlow delays a counter node's replies.
	OpSlow
	// OpTornWrite persists only a prefix of a file write, then fails it —
	// the on-disk image a power cut mid-write leaves behind.
	OpTornWrite
	// OpENOSPC fails a file write without persisting anything.
	OpENOSPC
	// OpCorrupt flips a byte of a file write and reports success.
	OpCorrupt
	// OpAmnesia restarts a counter node amnesically: volatile counter state
	// is wiped and the node refuses to serve until it re-syncs from peers.
	OpAmnesia
	// OpStall delays a file write — a degraded disk or saturated I/O queue
	// rather than a failure.
	OpStall
)

func (o Op) String() string {
	switch o {
	case OpDrop:
		return "drop"
	case OpReset:
		return "reset"
	case OpDelay:
		return "delay"
	case OpCrash:
		return "crash"
	case OpByzantine:
		return "byzantine"
	case OpSlow:
		return "slow"
	case OpTornWrite:
		return "torn-write"
	case OpENOSPC:
		return "enospc"
	case OpCorrupt:
		return "corrupt"
	case OpAmnesia:
		return "amnesia"
	case OpStall:
		return "stall"
	}
	return "?"
}

// Rule schedules one fault against one target.
type Rule struct {
	// Target names what the rule applies to: "link:<address>",
	// "node:<id>", "fs:<filename>", or "fs" for every file.
	Target string
	// Op is the fault kind.
	Op Op
	// After activates the rule once the target has performed this many
	// operations (link writes, node requests, file writes).
	After int
	// Until deactivates the rule at this operation count; zero makes the
	// rule fire exactly once, at operation After.
	Until int
	// Prob fires the rule with this probability while active, drawn from
	// the injector's seeded source; zero or >= 1 means always. Because
	// draw order depends on goroutine scheduling, probabilistic rules are
	// statistically — not bitwise — reproducible; count-based rules are
	// exact.
	Prob float64
	// Delay is the added latency for OpDelay and OpSlow.
	Delay time.Duration
}

// active reports whether the rule applies to the target's n-th operation.
func (r Rule) active(target string, n int) bool {
	if r.Target != target && !(r.Target == "fs" && strings.HasPrefix(target, "fs:")) {
		return false
	}
	if r.Until > 0 {
		return n >= r.After && n < r.Until
	}
	return n == r.After
}

// Scenario is a reproducible chaos schedule.
type Scenario struct {
	// Seed drives probabilistic rules and any jitter derived from the
	// injector.
	Seed int64
	// Rules is the fault schedule.
	Rules []Rule
}

// Build compiles the scenario into an injector.
func (s Scenario) Build() *Injector {
	in := New(s.Seed)
	in.Add(s.Rules...)
	return in
}

// Injector applies scenario rules to the seams it is attached to. One
// injector can drive links, nodes and filesystems at once; per-target
// operation counters make its decisions deterministic.
type Injector struct {
	mu     sync.Mutex
	rng    *mathrand.Rand
	rules  []Rule
	counts map[string]int
	trace  []string
}

// New creates an injector whose probabilistic decisions derive from seed.
func New(seed int64) *Injector {
	return &Injector{
		rng:    mathrand.New(mathrand.NewSource(seed)),
		counts: make(map[string]int),
	}
}

// Add appends rules to the schedule.
func (in *Injector) Add(rules ...Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, rules...)
}

// Count returns how many operations the target has performed.
func (in *Injector) Count(target string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[target]
}

// Trace returns the log of fired faults ("<target>#<op> <fault>"), in
// firing order.
func (in *Injector) Trace() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.trace...)
}

// step counts one operation on the target and returns the rules firing for
// it, recording them in the trace.
func (in *Injector) step(target string) []Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.counts[target]
	in.counts[target] = n + 1
	var fired []Rule
	for _, r := range in.rules {
		if !r.active(target, n) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
			continue
		}
		fired = append(fired, r)
		in.trace = append(in.trace, fmt.Sprintf("%s#%d %s", target, n, r.Op))
	}
	return fired
}

// LinkFault returns the netsim fault function for the named address,
// driven by the injector's "link:<address>" rules. Install it with
// Network.SetLinkFault(address, ...).
func (in *Injector) LinkFault(address string) netsim.FaultFunc {
	target := "link:" + address
	return func(int) netsim.Fault {
		var f netsim.Fault
		for _, r := range in.step(target) {
			switch r.Op {
			case OpDrop:
				f.Drop = true
			case OpReset:
				f.Reset = true
			case OpDelay:
				f.Delay += r.Delay
			}
		}
		return f
	}
}

// NodeHook returns the rote fault hook driven by the injector's
// "node:<id>" rules. Install it on every node of a group.
func (in *Injector) NodeHook() rote.NodeFaultHook {
	return func(nodeID int, _ string) rote.NodeFault {
		target := fmt.Sprintf("node:%d", nodeID)
		var f rote.NodeFault
		for _, r := range in.step(target) {
			switch r.Op {
			case OpCrash:
				f.Drop = true
			case OpByzantine:
				f.Byzantine = true
			case OpSlow:
				f.Delay += r.Delay
			case OpAmnesia:
				f.Amnesia = true
			}
		}
		return f
	}
}

// AttachGroup installs the injector's node hook on every node of the group.
func (in *Injector) AttachGroup(g *rote.Group) {
	h := in.NodeHook()
	for _, n := range g.Nodes() {
		n.SetFaultHook(h)
	}
}

// Convenience rule constructors, so scenario specs read as schedules.

// CrashNode makes node id unresponsive for its operations [after, until).
func CrashNode(id, after, until int) Rule {
	return Rule{Target: fmt.Sprintf("node:%d", id), Op: OpCrash, After: after, Until: until}
}

// ByzantineNode makes node id reply with stale state for ops [after, until).
func ByzantineNode(id, after, until int) Rule {
	return Rule{Target: fmt.Sprintf("node:%d", id), Op: OpByzantine, After: after, Until: until}
}

// SlowNode delays node id's replies by d for its operations [after, until).
func SlowNode(id, after, until int, d time.Duration) Rule {
	return Rule{Target: fmt.Sprintf("node:%d", id), Op: OpSlow, After: after, Until: until, Delay: d}
}

// DropLink discards writes on the link to addr for its ops [after, until) —
// a partition window.
func DropLink(addr string, after, until int) Rule {
	return Rule{Target: "link:" + addr, Op: OpDrop, After: after, Until: until}
}

// ResetLink resets the link to addr at write number at.
func ResetLink(addr string, at int) Rule {
	return Rule{Target: "link:" + addr, Op: OpReset, After: at}
}

// DelayLink adds d of latency to writes [after, until) on the link to addr.
func DelayLink(addr string, after, until int, d time.Duration) Rule {
	return Rule{Target: "link:" + addr, Op: OpDelay, After: after, Until: until, Delay: d}
}

// TornWrite tears the file's write number at (a crash mid-write).
func TornWrite(file string, at int) Rule {
	return Rule{Target: "fs:" + file, Op: OpTornWrite, After: at}
}

// NoSpace fails the file's writes [after, until) with ENOSPC.
func NoSpace(file string, after, until int) Rule {
	return Rule{Target: "fs:" + file, Op: OpENOSPC, After: after, Until: until}
}

// CorruptWrite silently corrupts the file's write number at.
func CorruptWrite(file string, at int) Rule {
	return Rule{Target: "fs:" + file, Op: OpCorrupt, After: at}
}

// AmnesicRestart restarts node id amnesically at its operation number at:
// counter state is wiped and the node refuses requests until it re-syncs.
func AmnesicRestart(id, at int) Rule {
	return Rule{Target: fmt.Sprintf("node:%d", id), Op: OpAmnesia, After: at}
}

// StallWrites delays the file's writes [after, until) by d — a degraded
// disk backing up the group-commit pipeline.
func StallWrites(file string, after, until int, d time.Duration) Rule {
	return Rule{Target: "fs:" + file, Op: OpStall, After: after, Until: until, Delay: d}
}
