// Package asyncall implements LibSEAL's asynchronous enclave transition
// mechanism (§4.3). Instead of application threads paying a hardware
// transition for every ecall and ocall, calls are exchanged through shared
// slot arrays: an application thread writes an async-ecall into its slot;
// lthread tasks running on resident enclave (SGX) threads pick it up and
// execute it inside; when enclave code needs untrusted functionality it
// posts an async-ocall back into the same slot and parks, and the owning
// application thread executes it outside.
//
// On real SGX hardware the two sides discover pending work by busy-polling
// the arrays (the paper dedicates a polling thread to waking application
// threads). This simulation transfers call data through the same
// per-application-thread slots but signals readiness through Go channels —
// the host-side analogue of the polling thread's wakeups — so that the
// mechanism behaves sensibly on machines without spare cores to burn. The
// costs charged per handoff come from the enclave cost model.
//
// The same Bridge also offers a synchronous mode in which every call is a
// real transition, used as the baseline for Table 2.
package asyncall

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"libseal/internal/enclave"
	"libseal/internal/lthread"
	"libseal/internal/telemetry"
)

// Bridge telemetry: the sync/async split reproduces Table 2's comparison,
// and queue depth shows how far ahead of the schedulers callers run.
var (
	mSyncCalls  = telemetry.NewCounter("asyncall.sync_calls", "calls")
	mAsyncCalls = telemetry.NewCounter("asyncall.async_calls", "calls")
	mQueueDepth = telemetry.NewGauge("asyncall.queue_depth", "slots")
)

// Mode selects how calls cross the enclave boundary.
type Mode int

const (
	// ModeSync performs one hardware transition per ecall/ocall.
	ModeSync Mode = iota
	// ModeAsync exchanges calls through the shared slot arrays.
	ModeAsync
)

func (m Mode) String() string {
	if m == ModeAsync {
		return "async"
	}
	return "sync"
}

// ErrClosed is returned by Call after the bridge has been closed.
var ErrClosed = errors.New("asyncall: bridge closed")

// Env is the execution environment handed to an ecall body. Ctx gives access
// to enclave facilities; Ocall runs fn in untrusted code using whichever
// mechanism the bridge is configured for.
type Env struct {
	Ctx   *enclave.Ctx
	ocall func(func() error) error
}

// Ocall executes fn outside the enclave and returns its error.
func (e *Env) Ocall(fn func() error) error { return e.ocall(fn) }

// Lock acquires mu from inside an enclave call without ever blocking an
// enclave thread. An lthread scheduler runs one task at a time, and a task
// that blocks on a contended mutex keeps the scheduler's thread — so if the
// mutex owner is a sibling task parked in an async-ocall, the owner can
// never resume to unlock: a deadlock the synchronous mode cannot exhibit.
// Lock therefore takes the mutex directly only when it is free; a contended
// acquisition runs as an ocall, parking the task (and releasing the enclave
// thread) until the lock is held. The caller unlocks mu normally —
// sync.Mutex is explicitly not goroutine-affine.
func Lock(env *Env, mu *sync.Mutex) {
	if mu.TryLock() {
		return
	}
	env.Ocall(func() error {
		mu.Lock()
		return nil
	})
}

// Config sizes the bridge. The zero value of any field picks a default.
type Config struct {
	Mode Mode
	// AppSlots (A) is the number of async-call request slots, one per
	// concurrently calling application thread.
	AppSlots int
	// Schedulers (S) is the number of resident enclave threads, each
	// running one lthread scheduler.
	Schedulers int
	// TasksPerScheduler (T) is the number of lthread tasks per scheduler.
	// The paper's heuristic is T >= A/S.
	TasksPerScheduler int
}

func (c Config) withDefaults() Config {
	if c.AppSlots <= 0 {
		c.AppSlots = 48
	}
	if c.Schedulers <= 0 {
		c.Schedulers = 3
	}
	if c.TasksPerScheduler <= 0 {
		c.TasksPerScheduler = (c.AppSlots + c.Schedulers - 1) / c.Schedulers
	}
	return c
}

// slot is one application thread's request slot in the shared arrays. The
// ecall closure, ocall closure and results transfer through it; the channels
// deliver the wakeups that hardware LibSEAL obtains by polling.
type slot struct {
	ecall    func(*Env) error
	ocallFn  func() error
	ocallErr error
	err      error
	task     *lthread.Task
	// appWake tells the owning application thread that either an
	// async-ocall awaits execution (ocallPending true) or the call
	// completed.
	appWake      chan struct{}
	ocallPending atomic.Bool
}

// Bridge connects application threads to an enclave.
type Bridge struct {
	encl   *enclave.Enclave
	cfg    Config
	free   chan *slot
	pend   chan *slot // posted async-ecalls awaiting a scheduler
	scheds []*lthread.Scheduler
	quit   chan struct{}
	closed atomic.Bool
	inUse  atomic.Int64
	wg     sync.WaitGroup
}

// New builds a bridge for the enclave. In async mode it launches the
// resident scheduler threads (each consuming one of the enclave's TCS
// slots).
func New(encl *enclave.Enclave, cfg Config) (*Bridge, error) {
	cfg = cfg.withDefaults()
	b := &Bridge{encl: encl, cfg: cfg, quit: make(chan struct{})}
	if cfg.Mode == ModeSync {
		return b, nil
	}
	b.free = make(chan *slot, cfg.AppSlots)
	b.pend = make(chan *slot, cfg.AppSlots)
	for i := 0; i < cfg.AppSlots; i++ {
		b.free <- &slot{appWake: make(chan struct{}, 1)}
	}
	started := make(chan error, cfg.Schedulers)
	for i := 0; i < cfg.Schedulers; i++ {
		sched := lthread.NewScheduler(cfg.TasksPerScheduler)
		b.scheds = append(b.scheds, sched)
		b.wg.Add(1)
		go func(sched *lthread.Scheduler) {
			defer b.wg.Done()
			err := encl.EnterResident(func(ctx *enclave.Ctx) {
				started <- nil
				b.dispatch(ctx, sched)
			})
			if err != nil {
				started <- err
			}
		}(sched)
	}
	for i := 0; i < cfg.Schedulers; i++ {
		if err := <-started; err != nil {
			close(b.quit)
			b.wg.Wait()
			return nil, err
		}
	}
	return b, nil
}

// Mode returns the bridge's call mode.
func (b *Bridge) Mode() Mode { return b.cfg.Mode }

// Enclave returns the enclave this bridge serves.
func (b *Bridge) Enclave() *enclave.Enclave { return b.encl }

// Call executes fn inside the enclave and returns its error. In sync mode it
// is a plain ecall; in async mode it posts the request into a free slot and
// sleeps until woken, executing any async-ocalls the enclave code requests
// in the meantime (steps 1-6 of Fig. 4).
func (b *Bridge) Call(fn func(*Env) error) error {
	if b.closed.Load() {
		return ErrClosed
	}
	if b.cfg.Mode == ModeSync {
		mSyncCalls.Inc()
		return b.encl.Ecall(func(ctx *enclave.Ctx) error {
			env := &Env{Ctx: ctx, ocall: ctx.Ocall}
			return fn(env)
		})
	}
	mAsyncCalls.Inc()
	s := <-b.free
	b.inUse.Add(1)
	defer func() {
		b.inUse.Add(-1)
		b.free <- s
	}()
	if b.closed.Load() {
		// Close may already be draining; do not start new work.
		return ErrClosed
	}
	s.ecall = fn
	s.err = nil
	b.encl.NoteAsyncEcall()
	select {
	case b.pend <- s:
		mQueueDepth.Add(1)
	case <-b.quit:
		return ErrClosed
	}
	for {
		select {
		case <-s.appWake:
		case <-b.quit:
			return ErrClosed
		}
		if s.ocallPending.Load() {
			// Step 4 of Fig. 4: this application thread executes the
			// async-ocall outside the enclave, then resumes the waiting
			// lthread task (step 5).
			s.ocallErr = s.ocallFn()
			s.ocallPending.Store(false)
			s.task.Unpark()
			continue
		}
		err := s.err
		s.ecall, s.ocallFn, s.task = nil, nil, nil
		return err
	}
}

// dispatch is the lthread scheduler loop running on one resident enclave
// thread: it takes pending async-ecalls and hands each to a free lthread
// task (step 2 of Fig. 4). Submit blocks while all of this scheduler's
// tasks are busy, so excess requests flow to the other schedulers.
func (b *Bridge) dispatch(ctx *enclave.Ctx, sched *lthread.Scheduler) {
	for {
		select {
		case <-b.quit:
			return
		case s := <-b.pend:
			mQueueDepth.Add(-1)
			if err := sched.Submit(func(task *lthread.Task) {
				b.runEcall(ctx, s, task)
			}); err != nil {
				// Scheduler shut down mid-dispatch: fail the call.
				s.err = ErrClosed
				s.appWake <- struct{}{}
				return
			}
		}
	}
}

// runEcall executes one async-ecall on an lthread task inside the enclave.
func (b *Bridge) runEcall(ctx *enclave.Ctx, s *slot, task *lthread.Task) {
	s.task = task
	env := &Env{
		Ctx: ctx,
		ocall: func(fn func() error) error {
			// Step 3 of Fig. 4: post the async-ocall into the slot bound
			// to the calling application thread, then park. The same task
			// resumes once the result is available (step 5).
			s.ocallFn = fn
			b.encl.NoteAsyncOcall()
			s.ocallPending.Store(true)
			s.appWake <- struct{}{}
			task.Park()
			return s.ocallErr
		},
	}
	s.err = s.ecall(env)
	s.appWake <- struct{}{}
}

// Close shuts the bridge down. New Calls fail with ErrClosed immediately;
// outstanding Calls are drained first, so callers must have closed any
// connections whose ocalls could block indefinitely.
func (b *Bridge) Close() {
	if b.closed.Swap(true) {
		return
	}
	if b.cfg.Mode == ModeAsync {
		for b.inUse.Load() != 0 {
			// Outstanding calls are finishing; yield until drained.
			runtime.Gosched()
		}
	}
	close(b.quit)
	for _, s := range b.scheds {
		s.Shutdown()
	}
	b.wg.Wait()
}
