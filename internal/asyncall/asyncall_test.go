package asyncall

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"libseal/internal/enclave"
)

func newBridge(t *testing.T, cfg Config) *Bridge {
	t.Helper()
	p := enclave.NewPlatform()
	e, err := p.Launch(enclave.Config{
		Code:       []byte("asyncall-test"),
		MaxThreads: cfg.Schedulers + 4,
		Cost:       enclave.ZeroCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func TestSyncCall(t *testing.T) {
	b := newBridge(t, Config{Mode: ModeSync})
	ran := false
	if err := b.Call(func(env *Env) error {
		ran = true
		env.Ctx.ChargeData(1)
		return nil
	}); err != nil || !ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
	if got := b.Enclave().Stats().Ecalls; got != 1 {
		t.Fatalf("Ecalls = %d, want 1", got)
	}
}

func TestSyncOcall(t *testing.T) {
	b := newBridge(t, Config{Mode: ModeSync})
	outside := false
	if err := b.Call(func(env *Env) error {
		return env.Ocall(func() error {
			outside = true
			return nil
		})
	}); err != nil || !outside {
		t.Fatalf("err=%v outside=%v", err, outside)
	}
	if got := b.Enclave().Stats().Ocalls; got != 1 {
		t.Fatalf("Ocalls = %d, want 1", got)
	}
}

func TestAsyncCall(t *testing.T) {
	b := newBridge(t, Config{Mode: ModeAsync, AppSlots: 4, Schedulers: 2, TasksPerScheduler: 2})
	ran := false
	if err := b.Call(func(env *Env) error {
		ran = true
		return nil
	}); err != nil || !ran {
		t.Fatalf("err=%v ran=%v", err, ran)
	}
	st := b.Enclave().Stats()
	if st.AsyncEcalls != 1 {
		t.Fatalf("AsyncEcalls = %d, want 1", st.AsyncEcalls)
	}
	// Only the resident scheduler entries should appear as hardware ecalls.
	if st.Ecalls != 2 {
		t.Fatalf("hardware Ecalls = %d, want 2 (resident schedulers)", st.Ecalls)
	}
}

func TestAsyncOcallRunsOnCallingThread(t *testing.T) {
	b := newBridge(t, Config{Mode: ModeAsync, AppSlots: 2, Schedulers: 1, TasksPerScheduler: 2})
	var ocallRan atomic.Bool
	if err := b.Call(func(env *Env) error {
		return env.Ocall(func() error {
			ocallRan.Store(true)
			return nil
		})
	}); err != nil {
		t.Fatal(err)
	}
	if !ocallRan.Load() {
		t.Fatal("async ocall never executed")
	}
	st := b.Enclave().Stats()
	if st.AsyncOcalls != 1 {
		t.Fatalf("AsyncOcalls = %d, want 1", st.AsyncOcalls)
	}
	if st.Ocalls != 0 {
		t.Fatalf("hardware Ocalls = %d, want 0 in async mode", st.Ocalls)
	}
}

func TestAsyncErrorsPropagate(t *testing.T) {
	b := newBridge(t, Config{Mode: ModeAsync, AppSlots: 2, Schedulers: 1, TasksPerScheduler: 2})
	wantEcall := errors.New("ecall failed")
	if err := b.Call(func(*Env) error { return wantEcall }); !errors.Is(err, wantEcall) {
		t.Fatalf("ecall err = %v, want %v", err, wantEcall)
	}
	wantOcall := errors.New("ocall failed")
	err := b.Call(func(env *Env) error {
		return env.Ocall(func() error { return wantOcall })
	})
	if !errors.Is(err, wantOcall) {
		t.Fatalf("ocall err = %v, want %v", err, wantOcall)
	}
}

func TestAsyncMultipleOcallsSameCall(t *testing.T) {
	b := newBridge(t, Config{Mode: ModeAsync, AppSlots: 2, Schedulers: 1, TasksPerScheduler: 2})
	var order []int
	if err := b.Call(func(env *Env) error {
		for i := 0; i < 5; i++ {
			i := i
			if err := env.Ocall(func() error {
				order = append(order, i)
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 5 {
		t.Fatalf("ran %d ocalls, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("ocall order %v, want sequential", order)
		}
	}
}

func TestAsyncConcurrentCallers(t *testing.T) {
	for _, cfg := range []Config{
		{Mode: ModeAsync, AppSlots: 8, Schedulers: 1, TasksPerScheduler: 8},
		{Mode: ModeAsync, AppSlots: 8, Schedulers: 3, TasksPerScheduler: 3},
		{Mode: ModeAsync, AppSlots: 4, Schedulers: 2, TasksPerScheduler: 1},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("S%dT%dA%d", cfg.Schedulers, cfg.TasksPerScheduler, cfg.AppSlots), func(t *testing.T) {
			b := newBridge(t, cfg)
			const callers = 16
			const perCaller = 20
			var total atomic.Int64
			var wg sync.WaitGroup
			for i := 0; i < callers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < perCaller; j++ {
						err := b.Call(func(env *Env) error {
							return env.Ocall(func() error {
								total.Add(1)
								return nil
							})
						})
						if err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if got := total.Load(); got != callers*perCaller {
				t.Fatalf("total = %d, want %d", got, callers*perCaller)
			}
		})
	}
}

func TestCallAfterClose(t *testing.T) {
	p := enclave.NewPlatform()
	e, _ := p.Launch(enclave.Config{Code: []byte("x"), MaxThreads: 4, Cost: enclave.ZeroCostModel()})
	b, err := New(e, Config{Mode: ModeAsync, AppSlots: 2, Schedulers: 1, TasksPerScheduler: 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	if err := b.Call(func(*Env) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call after Close = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestAsyncRequiresTCSForSchedulersOnly(t *testing.T) {
	// An enclave with exactly S TCS slots can still serve async calls: app
	// threads never enter.
	p := enclave.NewPlatform()
	e, _ := p.Launch(enclave.Config{Code: []byte("x"), MaxThreads: 2, Cost: enclave.ZeroCostModel()})
	b, err := New(e, Config{Mode: ModeAsync, AppSlots: 8, Schedulers: 2, TasksPerScheduler: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Call(func(env *Env) error {
				return env.Ocall(func() error { return nil })
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

func TestModeString(t *testing.T) {
	if ModeSync.String() != "sync" || ModeAsync.String() != "async" {
		t.Fatal("Mode.String mismatch")
	}
}
