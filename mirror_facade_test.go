package libseal

import (
	"context"
	"net"
	"path/filepath"
	"testing"
	"time"

	"libseal/internal/testutil"
)

// openMirroredServer builds a sharded disk-mode instance through the public
// facade and exposes its audit log with ServeAuditFeed.
func openMirroredServer(t *testing.T, dir string, certs *testutil.CertEnv) (*LibSEAL, *MirrorFeed, string, *CounterGroup) {
	t.Helper()
	platform := NewPlatform()
	encl, err := platform.Launch(EnclaveConfig{Code: []byte("mirror-facade-test"), MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := NewBridge(encl, BridgeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bridge.Close)
	group, err := NewCounterGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	// No scheduled checks: periodic trimming would rewrite shard files and
	// legitimately cold-restart the mirror, which is TestMirrorSurvivesTrim's
	// territory — this test pins the no-rescan resume path. The epoch-
	// manifest cadence rides the write path, so manifests still flow.
	seal, err := Open(bridge,
		WithModule(GitModule()),
		WithTLS(TLSConfig{Cert: certs.Cert, Key: certs.Key}),
		WithAuditDisk(dir),
		WithAuditShards(2),
		WithManifestInterval(30*time.Millisecond),
		WithCounterGroup(group),
	)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	feed, err := ServeAuditFeed(seal, ln)
	if err != nil {
		t.Fatal(err)
	}
	return seal, feed, ln.Addr().String(), group
}

func waitMirrorCaught(t *testing.T, m *Mirror, wantEntries int) MirrorStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		s := m.Status()
		if s.Err != nil {
			t.Fatalf("mirror violation: %v", s.Err)
		}
		if s.CaughtUp && s.LagBytes == 0 && s.Connected && s.Entries >= wantEntries {
			return s
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("mirror never caught up: %+v", m.Status())
	return MirrorStatus{}
}

// waitMirrorSynced waits until the mirror has verified exactly the server's
// durable entry count, with nothing staged — trailing group-commit flushes
// land after a workload returns, so "caught up at some tail" is not yet
// "verified everything the server will commit".
func waitMirrorSynced(t *testing.T, m *Mirror, seal *LibSEAL) MirrorStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		s := m.Status()
		if s.Err != nil {
			t.Fatalf("mirror violation: %v", s.Err)
		}
		want := int(seal.Log().Seq())
		if seal.Log().PendingStaged() == 0 && s.Entries == want &&
			s.CaughtUp && s.LagBytes == 0 && s.Connected {
			return s
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("mirror never synced: %+v (server seq %d)", m.Status(), seal.Log().Seq())
	return MirrorStatus{}
}

// TestMirrorFacadeResumeAcrossRestart runs live mirroring end to end through
// the public facade: a real Git workload on a sharded disk-mode server with
// the feed attached, a mirror that follows it, is stopped, misses a second
// workload, and resumes from its checkpoint — without a cold rescan and
// without a violation. Run under -race in CI.
func TestMirrorFacadeResumeAcrossRestart(t *testing.T) {
	certs, err := testutil.NewCertEnv("svc")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	seal, feed, addr, group := openMirroredServer(t, dir, certs)
	defer feed.Close()
	defer seal.Close()

	driveGitWorkload(t, seal, certs)

	cfg := MirrorConfig{
		Addr:            addr,
		Name:            "git",
		Pub:             seal.Bridge().Enclave().PublicKey(),
		CheckpointPath:  filepath.Join(t.TempDir(), "mirror.ckpt"),
		CheckpointEvery: time.Millisecond,
		BackoffMin:      10 * time.Millisecond,
		RestartGrace:    500 * time.Millisecond,
	}
	m1, err := StartMirror(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1 := waitMirrorCaught(t, m1, 1)
	if err := m1.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A second workload lands while the mirror is down.
	driveGitWorkload(t, seal, certs)

	m2, err := StartMirror(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop(context.Background())
	s2 := waitMirrorSynced(t, m2, seal)
	r := m2.Report()
	if !r.Live || !r.Resumed {
		t.Fatalf("Report: Live=%v Resumed=%v, want a resumed live mirror", r.Live, r.Resumed)
	}
	if r.Restarts != 0 {
		t.Fatalf("resume caused %d cold restarts, want 0", r.Restarts)
	}
	if s2.Entries <= s1.Entries {
		t.Fatalf("resumed mirror did not advance: %d -> %d entries", s1.Entries, s2.Entries)
	}
	if err := m2.Err(); err != nil {
		t.Fatalf("resumed mirror reported violation: %v", err)
	}

	// The offline verifier and the live mirror must agree on the log.
	if err := seal.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyContext(context.Background(), dir, VerifyStreamOptions{
		VerifyOptions: VerifyOptions{Pub: cfg.Pub, Protector: group, Name: "git"},
	})
	if err != nil {
		t.Fatalf("offline Verify after mirroring: %v", err)
	}
	if rep.TotalEntries != s2.Entries {
		t.Fatalf("offline verifier sees %d entries, mirror verified %d", rep.TotalEntries, s2.Entries)
	}
}
