// Command libseal-server runs one of the simulated services behind LibSEAL
// on a real TCP port. It launches a simulated SGX enclave, provisions a TLS
// certificate (written to disk for clients, along with the CA and the
// enclave's audit-signing public key), and serves the chosen service through
// the enclave TLS library with full auditing.
//
// Usage:
//
//	libseal-server -listen :8443 -service git -mode disk -dir ./audit
//
// Then interact with cmd/libseal-client, and validate the audit log with
// cmd/libseal-verify against the written enclave.pub.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"libseal"
	"libseal/internal/audit"
	"libseal/internal/pki"
	"libseal/internal/services/apache"
	"libseal/internal/services/dropbox"
	"libseal/internal/services/gitserver"
	"libseal/internal/services/messaging"
	"libseal/internal/services/owncloud"
	"libseal/internal/sqldb"
	"libseal/internal/telemetry"
	"libseal/internal/tlsterm"
)

// serviceHandlers maps service names to their simulated backends. Module
// resolution itself lives in libseal.ModuleByName; only the handlers are
// binary-specific.
var serviceHandlers = map[string]func() apache.Handler{
	"git":       func() apache.Handler { return gitserver.NewServer().Handler() },
	"owncloud":  func() apache.Handler { return owncloud.NewServer().Handler() },
	"dropbox":   func() apache.Handler { return dropbox.NewServer().Handler() },
	"messaging": func() apache.Handler { return messaging.NewServer().Handler() },
}

func main() {
	listen := flag.String("listen", ":8443", "TCP listen address")
	service := flag.String("service", "git", "service to run: git, owncloud, dropbox or messaging")
	mode := flag.String("mode", "mem", "audit mode: mem or disk")
	dir := flag.String("dir", ".", "directory for the audit log and key material")
	auditShards := flag.Int("audit-shards", 1, "audit log shard files; >1 partitions the log per connection with a signed cross-shard epoch manifest")
	checkEvery := flag.Int("check-every", 25, "run checks and trimming every N logged pairs (0 = off)")
	checkAsync := flag.Bool("check-async", false, "evaluate scheduled invariant checks on a background worker against a snapshot instead of on the request path")
	noIndexes := flag.Bool("no-indexes", false, "disable the audit database's hash indexes (nested-loop scans only; for ablation)")
	rateLimit := flag.Duration("check-rate-limit", time.Second, "minimum interval between client-triggered checks")
	recover := flag.Bool("recover", false, "resume from an existing audit log (requires the platform state from the previous run)")
	degradedLimit := flag.Int("degraded-limit", 64, "appends buffered under a stale counter anchor while the counter quorum is unreachable (0 = fail writes instead)")
	anchorTimeout := flag.Duration("anchor-timeout", 2*time.Second, "bound on each rollback-counter operation on the request path")
	recoverMaxLag := flag.Uint64("recover-max-lag", 1, "counter lag tolerated when resuming with -recover (a crash between increment and flush leaves lag 1)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /healthz, /readyz and /debug/pprof on this address (empty = off)")
	mirrorAddr := flag.String("mirror-addr", "", "serve the audit-log replication feed on this address for libseal-mirror followers (disk mode only; empty = off)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive counter-quorum failures that open the circuit breaker (0 = no breaker)")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long the breaker stays open before probing the quorum again")
	maxStaged := flag.Int("max-staged", 256, "staging budget of the audit group-commit pipeline; over-budget appends are shed (0 = unbounded)")
	admitTimeout := flag.Duration("admit-timeout", 500*time.Millisecond, "how long an over-budget append may wait for the pipeline to drain before being shed")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests and audit batches to finish")
	flag.Parse()

	module, err := libseal.ModuleByName(*service)
	if err != nil {
		log.Fatal(err)
	}
	mkHandler, ok := serviceHandlers[*service]
	if !ok {
		log.Fatalf("no handler for service %q", *service)
	}
	handler := mkHandler()

	// Launch the enclave and the call bridge. The platform state persists
	// across restarts (the simulation analogue of one physical machine), so
	// sealing keys, counters and the audit signing key survive.
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	platform, err := libseal.LoadOrCreatePlatform(filepath.Join(*dir, "platform.state"))
	if err != nil {
		log.Fatal(err)
	}
	encl, err := platform.Launch(libseal.EnclaveConfig{
		Code:       []byte("libseal-server/" + *service),
		MaxThreads: 32,
		Cost:       libseal.DefaultCostModel(),
	})
	if err != nil {
		log.Fatal(err)
	}
	bridge, err := libseal.NewBridge(encl, libseal.BridgeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer bridge.Close()

	// Generate the TLS identity inside the enclave and certify it,
	// embedding an attestation quote so clients can check they really talk
	// to LibSEAL (§6.3).
	ca, err := pki.NewCA("libseal-server-ca")
	if err != nil {
		log.Fatal(err)
	}
	pub, quote, key, err := tlsterm.GenerateEnclaveIdentity(bridge)
	if err != nil {
		log.Fatal(err)
	}
	cert, err := ca.Issue("libseal-server", pub, &quote)
	if err != nil {
		log.Fatal(err)
	}

	// Persist the client-side trust material.
	caCert := pki.EncodeCertPEM(&pki.Certificate{Subject: ca.Name, Issuer: ca.Name, PubKey: ca.PublicKey()})
	mustWrite(filepath.Join(*dir, "ca.pem"), caCert)
	mustWrite(filepath.Join(*dir, "server-cert.pem"), pki.EncodeCertPEM(cert))
	enclPub, err := pki.EncodePublicKeyPEM(encl.PublicKey())
	if err != nil {
		log.Fatal(err)
	}
	mustWrite(filepath.Join(*dir, "enclave.pub"), enclPub)

	cfg := libseal.Config{
		TLS:              libseal.TLSConfig{Cert: cert, Key: key, Opts: libseal.AllOptimizations()},
		Module:           module,
		CheckEvery:       *checkEvery,
		CheckAsync:       *checkAsync,
		NoIndexes:        *noIndexes,
		CheckMinInterval: *rateLimit,
		RecoverExisting:  *recover,
		OnViolation: func(name string, rows *sqldb.Result) {
			log.Printf("INTEGRITY VIOLATION %s: %d offending log entries", name, len(rows.Rows))
		},
	}
	var (
		group   *libseal.CounterGroup
		breaker *libseal.Breaker
	)
	switch *mode {
	case "mem":
		cfg.AuditMode = audit.ModeMemory
	case "disk":
		cfg.AuditMode = audit.ModeDisk
		cfg.AuditDir = *dir
		cfg.AuditShards = *auditShards
		cfg.DegradedLimit = *degradedLimit
		cfg.AnchorTimeout = *anchorTimeout
		cfg.RecoverMaxLag = *recoverMaxLag
		cfg.AuditMaxStaged = *maxStaged
		cfg.AuditAdmitTimeout = *admitTimeout
		group, err = libseal.NewCounterGroup(1)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Protector = group
		if *breakerThreshold > 0 {
			bp := libseal.NewBreakerProtector("rote.breaker", group, libseal.BreakerConfig{
				Threshold: *breakerThreshold,
				Cooldown:  *breakerCooldown,
				OnStateChange: func(from, to libseal.BreakerState) {
					log.Printf("counter breaker: %s -> %s", from, to)
				},
			})
			breaker = bp.Breaker()
			cfg.Protector = bp
		}
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	seal, err := libseal.New(bridge, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer seal.Close()

	if *mirrorAddr != "" {
		if *mode != "disk" {
			log.Fatal("-mirror-addr needs -mode disk: the feed streams the persisted log files")
		}
		ml, err := net.Listen("tcp", *mirrorAddr)
		if err != nil {
			log.Fatal(err)
		}
		feed, err := libseal.ServeAuditFeed(seal, ml)
		if err != nil {
			log.Fatal(err)
		}
		defer feed.Close()
		log.Printf("audit replication feed on %s (follow with: libseal-mirror -addr %s -service %s -pub %s)",
			ml.Addr(), ml.Addr(), *service, filepath.Join(*dir, "enclave.pub"))
	}

	if *metricsAddr != "" {
		mux := telemetry.NewServeMux()
		newHealth(seal, group, breaker, *degradedLimit).Mount(mux)
		go func() {
			log.Printf("telemetry on http://%s/metrics (health under /healthz and /readyz, pprof under /debug/pprof/)", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("telemetry endpoint: %v", err)
			}
		}()
	}

	server, err := apache.New(apache.Config{
		Terminator: seal.TLS().Terminator(),
		Handler:    handler,
		KeepAlive:  true,
	})
	if err != nil {
		log.Fatal(err)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("libseal-server: %s service on %s (audit: %s)", *service, l.Addr(), *mode)
	log.Printf("trust material in %s: ca.pem, server-cert.pem, enclave.pub", *dir)

	go func() {
		sig := make(chan os.Signal, 2)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutdown signal: no longer accepting connections, draining (timeout %v; signal again to force exit)", *drainTimeout)
		l.Close()
		<-sig
		log.Printf("second signal: forcing exit")
		os.Exit(1)
	}()
	// Serve returns nil once the listener closes; anything else is a real
	// serve failure.
	if err := server.Serve(l); err != nil {
		log.Fatal(err)
	}
	drain(seal, server, *drainTimeout)
}

// drain finishes in-flight work after the listener has closed: it waits for
// active connections to complete, runs a final invariant check, and flushes
// buffered group-commit batches by closing the audit log — all bounded by
// timeout so a stalled disk cannot wedge shutdown forever.
func drain(seal *libseal.LibSEAL, server *apache.Server, timeout time.Duration) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		server.Close() // waits for in-flight workers
		if result, err := seal.CheckNow(); err != nil {
			log.Printf("final invariant check: %v", err)
		} else {
			log.Printf("final invariant check: %s", result)
		}
		st := seal.StatsSnapshot()
		log.Printf("drained: %d pairs, %d tuples, %d checks, %d violations",
			st.Pairs, st.Tuples, st.Checks, st.Violations)
		if err := seal.Close(); err != nil {
			log.Printf("audit close: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		log.Printf("drain timed out after %v; exiting with in-flight work unflushed", timeout)
		os.Exit(1)
	}
}

// newHealth wires the server's readiness probes: counter-quorum liveness,
// circuit-breaker position, and audit degraded-mode pressure. Probes are
// nil-safe so mem mode (no counter group, no breaker) still serves /readyz.
func newHealth(seal *libseal.LibSEAL, group *libseal.CounterGroup, breaker *libseal.Breaker, degradedLimit int) *libseal.Health {
	h := libseal.NewHealth()
	h.Liveness("process", func() libseal.HealthCheckResult {
		return libseal.HealthOK("serving")
	})
	if group != nil {
		h.Readiness("rote-quorum", func() libseal.HealthCheckResult {
			need := 2*group.F() + 1
			healthy := 0
			for _, n := range group.NodeStatus() {
				if n.Alive && n.Synced {
					healthy++
				}
			}
			detail := fmt.Sprintf("%d/%d nodes healthy (quorum %d)", healthy, len(group.NodeStatus()), need)
			if healthy < need {
				return libseal.HealthUnhealthy(detail)
			}
			return libseal.HealthOK(detail)
		})
	}
	if breaker != nil {
		h.Readiness("counter-breaker", func() libseal.HealthCheckResult {
			s := breaker.State()
			if s == libseal.BreakerOpen {
				return libseal.HealthUnhealthy("breaker open: counter quorum unreachable")
			}
			return libseal.HealthOK("breaker " + s.String())
		})
	}
	h.Readiness("audit", func() libseal.HealthCheckResult {
		st := seal.AuditStatus()
		if st.Degraded {
			return libseal.HealthUnhealthy(fmt.Sprintf("degraded: %d appends awaiting a fresh counter anchor (limit %d)", st.PendingAnchor, degradedLimit))
		}
		return libseal.HealthOK(fmt.Sprintf("anchored (%d degraded episodes closed)", st.Gaps))
	})
	return h
}

func mustWrite(path string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
