// Command libseal-client issues requests to a libseal-server instance over
// the secure-channel protocol. It verifies the server certificate against
// the CA written by the server and can trigger in-band invariant checks via
// the Libseal-Check header (§5.2).
//
// Usage:
//
//	libseal-client -connect localhost:8443 -ca ./ca.pem \
//	    -method POST -path /git/demo/git-receive-pack -body "create main c1"
//	libseal-client -connect localhost:8443 -ca ./ca.pem \
//	    -path /git/demo/info/refs -check
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"libseal"
	"libseal/internal/httpparse"
	"libseal/internal/pki"
)

func main() {
	connect := flag.String("connect", "localhost:8443", "server address")
	caPath := flag.String("ca", "", "path to the server's ca.pem (omit to skip verification)")
	method := flag.String("method", "GET", "HTTP method")
	path := flag.String("path", "/", "request path")
	body := flag.String("body", "", "request body")
	check := flag.Bool("check", false, "trigger an invariant check with this request")
	serverName := flag.String("server-name", "libseal-server", "expected certificate subject")
	flag.Parse()

	cfg := &libseal.ClientConfig{InsecureSkipVerify: true}
	if *caPath != "" {
		pemData, err := os.ReadFile(*caPath)
		if err != nil {
			log.Fatal(err)
		}
		caCert, err := pki.DecodeCertPEM(pemData)
		if err != nil {
			log.Fatal(err)
		}
		pool := pki.NewPool()
		pool.AddRoot(caCert.Subject, caCert.PubKey)
		cfg = &libseal.ClientConfig{Roots: pool, ServerName: *serverName}
	}

	raw, err := net.Dial("tcp", *connect)
	if err != nil {
		log.Fatal(err)
	}
	conn, err := libseal.ConnectTLS(raw, cfg)
	if err != nil {
		log.Fatalf("handshake: %v", err)
	}
	defer conn.Close()

	req := httpparse.NewRequest(*method, *path, []byte(*body))
	if *check {
		req.Header.Set(libseal.CheckHeader, "1")
	}
	if err := req.Encode(conn); err != nil {
		log.Fatal(err)
	}
	rsp, err := httpparse.ParseResponseBytes(readAll(conn))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s %d %s\n", rsp.Proto, rsp.Status, rsp.Reason)
	for _, k := range rsp.Header.Keys() {
		fmt.Printf("%s: %s\n", k, rsp.Header.Get(k))
	}
	fmt.Println()
	os.Stdout.Write(rsp.Body)
	if result := rsp.Header.Get(libseal.CheckResultHeader); result != "" {
		fmt.Fprintf(os.Stderr, "\ncheck result: %s\n", result)
	}
}

// readAll reads until the response is complete (the server answers one
// request per connection invocation here, so read until parse succeeds).
func readAll(conn interface{ Read([]byte) (int, error) }) []byte {
	var buf []byte
	tmp := make([]byte, 32*1024)
	for {
		n, err := conn.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if _, _, perr := httpparse.ConsumeResponse(buf); perr == nil {
			return buf
		}
		if err != nil {
			return buf
		}
	}
}
