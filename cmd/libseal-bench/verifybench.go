package main

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"libseal/internal/audit"
)

// The verification bench: how fast can a client re-check a large batched
// log, and what does a crash cost? It writes a synthetic ≥1M-entry log
// (identical wire format to the live writer, §Synthetic log generation),
// times the sequential verifier as the baseline, then sweeps the parallel
// pipeline over 1/2/4/8 workers — cold, and resumed from a checkpoint taken
// at roughly half the log. The acceptance bar for PR 7 is ≥2× at 4 workers.

type verifyReport struct {
	Bench      string             `json:"bench"`
	Config     verifyBenchConfig  `json:"config"`
	Sequential verifySequentialNS `json:"sequential"`
	Runs       []verifyRun        `json:"runs"`
	Summary    verifySummary      `json:"summary"`
}

type verifyBenchConfig struct {
	Entries   int   `json:"entries"`
	BatchMax  int   `json:"batch_max"`
	FileBytes int64 `json:"file_bytes"`
	Batches   int   `json:"batches"`
	Quick     bool  `json:"quick"`
	// MaxProcs records the host parallelism the sweep ran under: on a
	// single-core host the speedup comes from the streaming path avoiding
	// the sequential verifier's full-log materialisation, not from CPU
	// parallelism, and the worker curve flattens early.
	MaxProcs int `json:"gomaxprocs"`
}

type verifySequentialNS struct {
	NS        int64   `json:"ns"`
	EntriesPS float64 `json:"entries_per_sec"`
	MBPS      float64 `json:"mb_per_sec"`
}

type verifyRun struct {
	Workers int `json:"workers"`

	ColdNS        int64   `json:"cold_ns"`
	ColdEntriesPS float64 `json:"cold_entries_per_sec"`
	ColdMBPS      float64 `json:"cold_mb_per_sec"`
	SpeedupVsSeq  float64 `json:"speedup_vs_sequential"`

	ResumedNS int64 `json:"resumed_ns"`
	// ResumedFromBatch is the checkpointed batch count the warm run started
	// from; ResumedBatches is how many it actually re-verified.
	ResumedFromBatch int     `json:"resumed_from_batch"`
	ResumedBatches   int     `json:"resumed_batches"`
	ResumedSpeedup   float64 `json:"resumed_speedup_vs_cold"`
	ResultsMatch     bool    `json:"results_match_sequential"`
}

type verifySummary struct {
	SpeedupAt4Workers float64 `json:"speedup_at_4_workers"`
	BestSpeedup       float64 `json:"best_speedup"`
	BestWorkers       int     `json:"best_workers"`
}

// runVerifyBench generates the log, runs the sweep and writes the report.
func runVerifyBench(path string, q bool) error {
	entries := 1_200_000
	if q {
		entries = 150_000
	}
	const batchMax = 64

	dir, err := os.MkdirTemp("", "libseal-verify-bench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "bench.lseal")

	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return err
	}
	fmt.Printf("writing synthetic log: %d entries, batch max %d ...\n", entries, batchMax)
	size, err := audit.WriteSyntheticLogFile(logPath, key, entries, batchMax)
	if err != nil {
		return err
	}
	batches := (entries + batchMax - 1) / batchMax
	fmt.Printf("log: %.1f MB, %d batches\n", float64(size)/1e6, batches)

	report := verifyReport{
		Bench: "pr7-parallel-verify",
		Config: verifyBenchConfig{
			Entries: entries, BatchMax: batchMax, FileBytes: size,
			Batches: batches, Quick: q, MaxProcs: runtime.GOMAXPROCS(0),
		},
	}
	opts := audit.VerifyOptions{Pub: &key.PublicKey}

	// Sequential baseline: the pre-PR verifier (materialises every entry).
	t0 := time.Now()
	seqEntries, err := audit.VerifyFile(logPath, opts)
	seqNS := time.Since(t0).Nanoseconds()
	if err != nil {
		return fmt.Errorf("sequential verify: %w", err)
	}
	report.Sequential = verifySequentialNS{
		NS:        seqNS,
		EntriesPS: float64(entries) / (float64(seqNS) / 1e9),
		MBPS:      float64(size) / 1e6 / (float64(seqNS) / 1e9),
	}
	fmt.Printf("sequential: %.2fs (%.0f entries/s, %.1f MB/s)\n",
		float64(seqNS)/1e9, report.Sequential.EntriesPS, report.Sequential.MBPS)

	for _, workers := range []int{1, 2, 4, 8} {
		run, err := verifySweepOne(logPath, opts, workers, len(seqEntries), seqNS, size)
		if err != nil {
			return fmt.Errorf("workers=%d: %w", workers, err)
		}
		report.Runs = append(report.Runs, run)
		fmt.Printf("workers=%d  cold %.2fs (%.2fx vs sequential, %.1f MB/s)  resumed %.2fs (%.2fx vs cold, from batch %d/%d)\n",
			workers, float64(run.ColdNS)/1e9, run.SpeedupVsSeq, run.ColdMBPS,
			float64(run.ResumedNS)/1e9, run.ResumedSpeedup, run.ResumedFromBatch, batches)
	}

	for _, r := range report.Runs {
		if r.Workers == 4 {
			report.Summary.SpeedupAt4Workers = r.SpeedupVsSeq
		}
		if r.SpeedupVsSeq > report.Summary.BestSpeedup {
			report.Summary.BestSpeedup = r.SpeedupVsSeq
			report.Summary.BestWorkers = r.Workers
		}
	}
	fmt.Printf("\nspeedup at 4 workers: %.2fx (best %.2fx at %d workers)\n",
		report.Summary.SpeedupAt4Workers, report.Summary.BestSpeedup, report.Summary.BestWorkers)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// verifySweepOne times one worker count, cold and resumed-from-midpoint.
func verifySweepOne(logPath string, opts audit.VerifyOptions, workers, wantEntries int, seqNS, size int64) (verifyRun, error) {
	run := verifyRun{Workers: workers}
	ckptPath := logPath + fmt.Sprintf(".w%d.ckpt", workers)
	defer os.Remove(ckptPath)

	// Cold run, streaming mode (no entry accumulation), no checkpoints so
	// the timing is pure verification.
	t0 := time.Now()
	cold, err := audit.VerifyFileStream(logPath, audit.StreamOptions{
		VerifyOptions: opts, Workers: workers,
		OnSegment: func(audit.SegmentInfo) error { return nil },
	})
	run.ColdNS = time.Since(t0).Nanoseconds()
	if err != nil {
		return run, err
	}
	run.ColdEntriesPS = float64(cold.TotalEntries) / (float64(run.ColdNS) / 1e9)
	run.ColdMBPS = float64(size) / 1e6 / (float64(run.ColdNS) / 1e9)
	run.SpeedupVsSeq = float64(seqNS) / float64(run.ColdNS)
	run.ResultsMatch = cold.TotalEntries == wantEntries

	// Simulate a verifier killed halfway: checkpoint as we go, abort at 50%
	// of the batches, then resume from the sidecar.
	killAt := cold.TotalBatches / 2
	errKilled := errors.New("killed")
	segs := 0
	_, err = audit.VerifyFileStream(logPath, audit.StreamOptions{
		VerifyOptions: opts, Workers: workers,
		Checkpoint: &audit.CheckpointConfig{Path: ckptPath, EverySegments: 256},
		OnSegment: func(audit.SegmentInfo) error {
			if segs++; segs >= killAt {
				return errKilled
			}
			return nil
		},
	})
	if !errors.Is(err, errKilled) {
		return run, fmt.Errorf("kill simulation: %v", err)
	}
	ck, err := audit.LoadCheckpoint(ckptPath)
	if err != nil {
		return run, fmt.Errorf("load checkpoint: %w", err)
	}
	run.ResumedFromBatch = ck.Batches

	t0 = time.Now()
	warm, err := audit.VerifyFileStream(logPath, audit.StreamOptions{
		VerifyOptions: opts, Workers: workers, Resume: ck,
		OnSegment: func(audit.SegmentInfo) error { return nil },
	})
	run.ResumedNS = time.Since(t0).Nanoseconds()
	if err != nil {
		return run, fmt.Errorf("resumed verify: %w", err)
	}
	run.ResumedBatches = warm.Batches
	if run.ResumedNS > 0 {
		run.ResumedSpeedup = float64(run.ColdNS) / float64(run.ResumedNS)
	}
	run.ResultsMatch = run.ResultsMatch &&
		warm.TotalEntries == cold.TotalEntries &&
		warm.TotalBatches == cold.TotalBatches &&
		warm.Counter == cold.Counter &&
		warm.CommittedBytes == cold.CommittedBytes
	if !run.ResultsMatch {
		return run, fmt.Errorf("results diverge: cold %+v warm %+v", cold, warm)
	}
	return run, nil
}
