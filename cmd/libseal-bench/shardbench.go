package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/enclave"
	"libseal/internal/rote"
)

// The sharding bench: how much aggregate append throughput does partitioning
// the audit log buy? Each shard runs its own group-commit pipeline with its
// own rollback counter, so the per-batch counter increment and fsync — the
// serial section of a single log — proceed in parallel across shards. The
// sweep drives 16 client goroutines (one connection key each) against 1, 2,
// 4 and 8 shards over a ROTE group with simulated network latency, then
// re-verifies the whole set including the epoch-manifest replay. The
// acceptance bar for PR 8 is ≥2× at 4 shards versus 1.

const shardBenchSchema = `CREATE TABLE ops (time INTEGER, client INTEGER, op TEXT);`

type shardReport struct {
	Bench   string           `json:"bench"`
	Config  shardBenchConfig `json:"config"`
	Runs    []shardRun       `json:"runs"`
	Summary shardSummary     `json:"summary"`
}

type shardBenchConfig struct {
	Clients  int `json:"clients"`
	Entries  int `json:"entries_per_run"`
	BatchMax int `json:"batch_max"`
	// RowsPerStage is the rows one client stages per durable wait (a
	// request/response pair logs a handful of tuples).
	RowsPerStage int `json:"rows_per_stage"`
	// RoteLatencyUS is the simulated one-way network latency to the counter
	// nodes; it is what makes the anchor the serial section.
	RoteLatencyUS int64 `json:"rote_latency_us"`
	Quick         bool  `json:"quick"`
	MaxProcs      int   `json:"gomaxprocs"`
}

type shardRun struct {
	Shards    int     `json:"shards"`
	NS        int64   `json:"ns"`
	EntriesPS float64 `json:"entries_per_sec"`
	SpeedupV1 float64 `json:"speedup_vs_1_shard"`

	// Post-run verification of the written set (strict, manifest replay
	// included for sharded runs).
	VerifyNS        int64  `json:"verify_ns"`
	VerifiedEntries int    `json:"verified_entries"`
	Manifests       int    `json:"manifests"`
	Epoch           uint64 `json:"epoch"`
	VerifyOK        bool   `json:"verify_ok"`
}

type shardSummary struct {
	SpeedupAt4Shards float64 `json:"speedup_at_4_shards"`
	BestSpeedup      float64 `json:"best_speedup"`
	BestShards       int     `json:"best_shards"`
}

// runShardBench sweeps shard counts and writes the report.
func runShardBench(path string, q bool) error {
	clients := 16
	entries := 48_000
	if q {
		entries = 8_000
	}
	const (
		batchMax     = 16
		rowsPerStage = 8
		roteLatency  = 500 * time.Microsecond
	)

	report := shardReport{
		Bench: "pr8-sharded-append",
		Config: shardBenchConfig{
			Clients: clients, Entries: entries, BatchMax: batchMax,
			RowsPerStage: rowsPerStage, RoteLatencyUS: roteLatency.Microseconds(),
			Quick: q, MaxProcs: runtime.GOMAXPROCS(0),
		},
	}

	for _, shards := range []int{1, 2, 4, 8} {
		run, err := shardSweepOne(shards, clients, entries, batchMax, rowsPerStage, roteLatency)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", shards, err)
		}
		if len(report.Runs) > 0 {
			run.SpeedupV1 = float64(report.Runs[0].NS) / float64(run.NS)
		} else {
			run.SpeedupV1 = 1
		}
		report.Runs = append(report.Runs, run)
		fmt.Printf("shards=%d  %.2fs (%.0f entries/s, %.2fx vs 1 shard)  verify %.2fs: %d entries, %d manifests, epoch %d\n",
			shards, float64(run.NS)/1e9, run.EntriesPS, run.SpeedupV1,
			float64(run.VerifyNS)/1e9, run.VerifiedEntries, run.Manifests, run.Epoch)
	}

	for _, r := range report.Runs {
		if r.Shards == 4 {
			report.Summary.SpeedupAt4Shards = r.SpeedupV1
		}
		if r.SpeedupV1 > report.Summary.BestSpeedup {
			report.Summary.BestSpeedup = r.SpeedupV1
			report.Summary.BestShards = r.Shards
		}
	}
	fmt.Printf("\nspeedup at 4 shards: %.2fx (best %.2fx at %d shards)\n",
		report.Summary.SpeedupAt4Shards, report.Summary.BestSpeedup, report.Summary.BestShards)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// shardSweepOne times one shard count end to end: fresh enclave, fresh
// counter group, fresh directory; clients append until the entry budget is
// spent; the set is closed and strictly re-verified.
func shardSweepOne(shards, clients, entries, batchMax, rowsPerStage int, roteLatency time.Duration) (shardRun, error) {
	run := shardRun{Shards: shards}

	p := enclave.NewPlatform()
	encl, err := p.Launch(enclave.Config{
		Code: []byte("libseal-shard-bench"), MaxThreads: 32, Cost: enclave.ZeroCostModel(),
	})
	if err != nil {
		return run, err
	}
	bridge, err := asyncall.New(encl, asyncall.Config{Mode: asyncall.ModeSync})
	if err != nil {
		return run, err
	}
	defer bridge.Close()
	group, err := rote.NewGroup(1, roteLatency)
	if err != nil {
		return run, err
	}
	dir, err := os.MkdirTemp("", "libseal-shard-bench-*")
	if err != nil {
		return run, err
	}
	defer os.RemoveAll(dir)

	cfg := audit.ShardedConfig{
		Config: audit.Config{
			Name: "bench", Schema: shardBenchSchema, Mode: audit.ModeDisk,
			Dir: dir, Protector: group,
			BatchMax: batchMax, BatchDelay: 200 * time.Microsecond,
			AnchorTimeout: 5 * time.Second,
		},
		Shards:        shards,
		ManifestEvery: 100 * time.Millisecond,
	}
	var log *audit.ShardedLog
	if err := bridge.Call(func(env *asyncall.Env) error {
		log, err = audit.NewSharded(env, cfg)
		return err
	}); err != nil {
		return run, err
	}

	perClient := entries / clients / rowsPerStage // stages per client
	var wg sync.WaitGroup
	errs := make([]error, clients)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key := uint64(c)
			rows := make([]audit.Row, rowsPerStage)
			for i := 0; i < perClient; i++ {
				for j := range rows {
					rows[j] = audit.Row{Table: "ops", Values: []any{i, c, "put"}}
				}
				err := bridge.Call(func(env *asyncall.Env) error {
					tk, err := log.Stage(env, key, rows)
					if err != nil {
						return err
					}
					if err := tk.Wait(env); err != nil {
						return err
					}
					// The live server publishes manifests off the write path
					// on a cadence; mirror that so sharded runs pay the same
					// manifest cost they would in production.
					return log.ManifestIfDue(env)
				})
				if err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	run.NS = time.Since(t0).Nanoseconds()
	for c, err := range errs {
		if err != nil {
			return run, fmt.Errorf("client %d: %w", c, err)
		}
	}
	staged := perClient * rowsPerStage * clients
	if got := int(log.Seq()); got != staged {
		return run, fmt.Errorf("staged %d entries, log seq %d", staged, got)
	}
	run.EntriesPS = float64(staged) / (float64(run.NS) / 1e9)
	if err := log.Close(); err != nil {
		return run, err
	}

	t0 = time.Now()
	res, err := audit.VerifyPath(dir, audit.StreamOptions{
		VerifyOptions: audit.VerifyOptions{
			Pub: encl.PublicKey(), Protector: group, Name: "bench",
		},
		Workers:   runtime.GOMAXPROCS(0),
		OnSegment: func(audit.SegmentInfo) error { return nil },
	})
	run.VerifyNS = time.Since(t0).Nanoseconds()
	if err != nil {
		return run, fmt.Errorf("post-run verification: %w", err)
	}
	run.VerifiedEntries = res.TotalEntries
	run.Manifests = res.Manifests
	run.Epoch = res.Epoch
	run.VerifyOK = res.TotalEntries == staged
	if !run.VerifyOK {
		return run, fmt.Errorf("verified %d entries, want %d", res.TotalEntries, staged)
	}
	return run, nil
}
