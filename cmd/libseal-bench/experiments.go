package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"libseal"
	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/bench"
	"libseal/internal/enclave"
	"libseal/internal/httpparse"
	"libseal/internal/rote"
	"libseal/internal/services/messaging"
	"libseal/internal/services/owncloud"
	"libseal/internal/ssm/dropboxssm"
	"libseal/internal/ssm/messagingssm"
	"libseal/internal/ssm/owncloudssm"
	"libseal/internal/testutil"
	"libseal/internal/tlsterm"
)

func cost() enclave.CostModel { return libseal.DefaultCostModel() }

// moduleFor resolves a service module through the public registry. The names
// come from the static experiment tables, so a miss is a programming error.
func moduleFor(name string) libseal.Module {
	m, err := libseal.ModuleByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

func status200(rsp *httpparse.Response) error {
	if rsp.Status != 200 {
		return fmt.Errorf("status %d", rsp.Status)
	}
	return nil
}

// scale shrinks request budgets in -quick mode.
func scale(q bool, n int) int {
	if q {
		return n / 4
	}
	return n
}

// --- Table 1 ---------------------------------------------------------------

// runTable1 prints the module inventory with lines of code (counted from the
// source tree when available) and the measured enclave interface activity of
// a short audited workload.
func runTable1(bool) error {
	root := findModuleRoot()
	groups := []struct {
		name string
		dirs []string
	}{
		{"TLS termination (tlsterm, pki)", []string{"internal/tlsterm", "internal/pki"}},
		{"Enclave runtime (enclave)", []string{"internal/enclave"}},
		{"Async transitions (asyncall, lthread)", []string{"internal/asyncall", "internal/lthread"}},
		{"Embedded database (sqldb)", []string{"internal/sqldb"}},
		{"Audit logging (audit, rote, core)", []string{"internal/audit", "internal/rote", "internal/core"}},
		{"Service modules (ssm/*)", []string{"internal/ssm"}},
		{"Services and harness", []string{"internal/services", "internal/httpparse", "internal/netsim", "internal/bench", "internal/testutil"}},
	}
	total := 0
	fmt.Printf("%-42s %10s\n", "Module", "LOC")
	for _, g := range groups {
		loc := 0
		for _, d := range g.dirs {
			loc += countGoLines(filepath.Join(root, d))
		}
		total += loc
		fmt.Printf("%-42s %10d\n", g.name, loc)
	}
	fmt.Printf("%-42s %10d\n", "Total", total)

	// Enclave interface: measure a short audited Git workload.
	st, err := bench.NewGitStack(bench.StackOptions{Mode: bench.ModeDisk}, 0)
	if err != nil {
		return err
	}
	defer st.Close()
	client := st.NewClient(true)
	for i := 0; i < 20; i++ {
		if _, err := client.Do(httpparse.NewRequest("POST", "/git/t/git-receive-pack",
			[]byte(fmt.Sprintf("update main c%d", i)))); err != nil {
			return err
		}
	}
	client.Close()
	stats := st.Enclave.Stats()
	fmt.Printf("\nEnclave interface over 20 audited requests:\n")
	fmt.Printf("  ecalls=%d ocalls=%d seals=%d\n", stats.Ecalls, stats.Ocalls, stats.Seals)
	return nil
}

func findModuleRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

func countGoLines(dir string) int {
	lines := 0
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		lines += strings.Count(string(data), "\n")
		return nil
	})
	return lines
}

// --- Figure 5a -------------------------------------------------------------

func runFig5a(q bool) error {
	fmt.Printf("%-18s %10s %12s %12s\n", "configuration", "req/s", "mean-lat", "p95-lat")
	var baseline float64
	for _, mode := range []bench.SealMode{bench.ModeNative, bench.ModeProcess, bench.ModeMem, bench.ModeDisk} {
		st, err := bench.NewGitStack(bench.StackOptions{Mode: mode, Cost: cost(), CheckEvery: 25},
			2*time.Millisecond)
		if err != nil {
			return err
		}
		res, err := bench.Load{
			Clients:    4,
			Requests:   scale(q, 320),
			Warmup:     8,
			MakeClient: func(int) *bench.Client { return st.NewClient(true) },
			MakeRequest: func(worker, seq int) *httpparse.Request {
				repo := fmt.Sprintf("repo%d", worker)
				if seq%10 == 9 {
					return httpparse.NewRequest("GET", "/git/"+repo+"/info/refs", nil)
				}
				return httpparse.NewRequest("POST", "/git/"+repo+"/git-receive-pack",
					[]byte(fmt.Sprintf("update main c%d", seq)))
			},
			Validate: status200,
		}.Run()
		st.Close()
		if err != nil {
			return err
		}
		if mode == bench.ModeNative {
			baseline = res.Throughput
		}
		fmt.Printf("%-18s %10.1f %12s %12s   (%+.0f%% vs native)\n", mode, res.Throughput,
			res.Latency.Mean.Round(time.Microsecond), res.Latency.P95.Round(time.Microsecond),
			100*(res.Throughput-baseline)/baseline)
	}
	return nil
}

// --- Figure 5b -------------------------------------------------------------

func runFig5b(q bool) error {
	fmt.Printf("%-18s %10s %12s\n", "configuration", "req/s", "mean-lat")
	var baseline float64
	for _, mode := range []bench.SealMode{bench.ModeNative, bench.ModeMem, bench.ModeDisk} {
		st, err := bench.NewOwnCloudStack(bench.StackOptions{Mode: mode, Cost: cost(), CheckEvery: 75},
			3*time.Millisecond)
		if err != nil {
			return err
		}
		res, err := bench.Load{
			Clients:    4,
			Requests:   scale(q, 160),
			Warmup:     8,
			MakeClient: func(int) *bench.Client { return st.NewClient(true) },
			MakeRequest: func(worker, seq int) *httpparse.Request {
				body, _ := json.Marshal(owncloudssm.PushMsg{
					Doc:    fmt.Sprintf("doc%d", worker),
					Client: fmt.Sprintf("client%d", worker),
					Ops:    []string{fmt.Sprintf("ins(%d,'x')", seq)},
				})
				return httpparse.NewRequest("POST", "/owncloud/push", body)
			},
			Validate: status200,
		}.Run()
		st.Close()
		if err != nil {
			return err
		}
		if mode == bench.ModeNative {
			baseline = res.Throughput
		}
		fmt.Printf("%-18s %10.1f %12s   (%+.0f%% vs native)\n", mode, res.Throughput,
			res.Latency.Mean.Round(time.Microsecond), 100*(res.Throughput-baseline)/baseline)
	}
	_ = owncloud.Faults{} // keep service import for fault-injection docs
	return nil
}

// --- Figure 5c -------------------------------------------------------------

func runFig5c(q bool) error {
	n := scale(q, 20)
	if n < 4 {
		n = 4
	}
	fmt.Printf("%-18s %16s %16s\n", "configuration", "commit_batch", "list")
	for _, mode := range []bench.SealMode{bench.ModeNative, bench.ModeMem, bench.ModeDisk} {
		st, err := bench.NewDropboxStack(bench.StackOptions{Mode: mode, Cost: cost(), CheckEvery: 100},
			bench.DropboxWANLatency)
		if err != nil {
			return err
		}
		client := st.NewDropboxClient(true)
		commit := func(i int) (time.Duration, error) {
			body, _ := json.Marshal(dropboxssm.CommitBatchMsg{
				Account: "u", Host: "h",
				Commits: []dropboxssm.FileCommit{{File: fmt.Sprintf("f%d", i%40), Blocklist: fmt.Sprintf("%064d", i), Size: 4096}},
			})
			start := time.Now()
			rsp, err := client.Do(httpparse.NewRequest("POST", "/dropbox/commit_batch", body))
			if err != nil || rsp.Status != 200 {
				return 0, fmt.Errorf("commit: %v %v", rsp, err)
			}
			return time.Since(start), nil
		}
		list := func() (time.Duration, error) {
			start := time.Now()
			rsp, err := client.Do(httpparse.NewRequest("GET", "/dropbox/list?account=u&host=h", nil))
			if err != nil || rsp.Status != 200 {
				return 0, fmt.Errorf("list: %v %v", rsp, err)
			}
			return time.Since(start), nil
		}
		if _, err := commit(0); err != nil { // warm up connection + handshake
			return err
		}
		var commitTotal, listTotal time.Duration
		for i := 0; i < n; i++ {
			d, err := commit(i + 1)
			if err != nil {
				return err
			}
			commitTotal += d
			d, err = list()
			if err != nil {
				return err
			}
			listTotal += d
		}
		client.Close()
		st.Close()
		fmt.Printf("%-18s %13.1fms %13.1fms\n", mode,
			float64(commitTotal.Microseconds())/float64(n)/1000,
			float64(listTotal.Microseconds())/float64(n)/1000)
	}
	return nil
}

// --- Figure 6 --------------------------------------------------------------

func runFig6(q bool) error {
	services := []struct {
		name string
		mk   func() (*bench.LogFiller, error)
	}{
		{"git", func() (*bench.LogFiller, error) { return bench.NewGitFiller(moduleFor("git")) }},
		{"owncloud", func() (*bench.LogFiller, error) { return bench.NewOwnCloudFiller(moduleFor("owncloud")) }},
		{"dropbox", func() (*bench.LogFiller, error) { return bench.NewDropboxFiller(moduleFor("dropbox")) }},
	}
	intervals := []int{25, 50, 75, 100, 150, 225, 300}
	if q {
		intervals = []int{25, 75, 150}
	}
	fmt.Printf("%-10s", "interval")
	for _, iv := range intervals {
		fmt.Printf(" %9d", iv)
	}
	fmt.Println()
	for _, svc := range services {
		fmt.Printf("%-10s", svc.name)
		for _, iv := range intervals {
			filler, err := svc.mk()
			if err != nil {
				return err
			}
			_, bridge, err := testutil.NewBridge(testutil.BridgeOptions{Cost: cost()})
			if err != nil {
				return err
			}
			group, err := rote.NewGroup(1, 30*time.Microsecond)
			if err != nil {
				return err
			}
			dir, err := os.MkdirTemp("", "fig6-*")
			if err != nil {
				return err
			}
			if err := filler.Attach(bridge, audit.Config{Mode: audit.ModeDisk, Dir: dir, Protector: group}); err != nil {
				return err
			}
			var total time.Duration
			rounds := 0
			for r := 0; r < 4; r++ {
				if err := filler.Fill(iv); err != nil {
					return err
				}
				d, err := filler.CheckTrim()
				if err != nil {
					return err
				}
				if r > 0 {
					total += d
					rounds++
				}
			}
			bridge.Close()
			os.RemoveAll(dir)
			fmt.Printf(" %7.1fµs", float64(total.Microseconds())/float64(rounds*iv))
		}
		fmt.Println()
	}
	fmt.Println("(normalized check+trim time per request; the minimum marks the optimal interval)")
	return nil
}

// --- Figure 7a -------------------------------------------------------------

func runFig7a(q bool) error {
	sizes := []struct {
		name string
		n    int
	}{{"0B", 0}, {"1KB", 1 << 10}, {"10KB", 10 << 10}, {"64KB", 64 << 10},
		{"512KB", 512 << 10}, {"1MB", 1 << 20}, {"10MB", 10 << 20}, {"100MB", 100 << 20}}
	if q {
		sizes = sizes[:5]
	}
	fmt.Printf("%-8s %14s %14s %10s\n", "size", "native req/s", "libseal req/s", "overhead")
	for _, size := range sizes {
		requests := 120
		if size.n >= 512<<10 {
			requests = 24
		}
		if size.n >= 10<<20 {
			requests = 6
		}
		var tput [2]float64
		for i, mode := range []bench.SealMode{bench.ModeNative, bench.ModeProcess} {
			st, err := bench.NewStaticStack(bench.StackOptions{
				Mode: mode, Cost: cost(), CallMode: asyncall.ModeAsync,
			}, size.n, false)
			if err != nil {
				return err
			}
			res, err := bench.Load{
				Clients:     4,
				Requests:    scale(q, requests),
				Warmup:      2,
				MakeClient:  func(int) *bench.Client { return st.NewClient(false) },
				MakeRequest: func(_, _ int) *httpparse.Request { return httpparse.NewRequest("GET", "/c", nil) },
				Validate:    status200,
			}.Run()
			st.Close()
			if err != nil {
				return err
			}
			tput[i] = res.Throughput
		}
		fmt.Printf("%-8s %14.1f %14.1f %9.1f%%\n", size.name, tput[0], tput[1],
			100*(tput[0]-tput[1])/tput[0])
	}
	return nil
}

// --- Figure 7b -------------------------------------------------------------

func runFig7b(q bool) error {
	fmt.Printf("%-18s %10s %12s\n", "configuration", "req/s", "mean-lat")
	for _, mode := range []bench.SealMode{bench.ModeNative, bench.ModeProcess} {
		st, err := bench.NewSquidStack(bench.StackOptions{
			Mode: mode, Cost: cost(), CallMode: asyncall.ModeAsync,
		}, 1<<10)
		if err != nil {
			return err
		}
		res, err := bench.Load{
			Clients:  4,
			Requests: scale(q, 160),
			Warmup:   4,
			MakeClient: func(int) *bench.Client {
				return bench.NewClient(st.Dial, st.ClientConfig(), false)
			},
			MakeRequest: func(_, _ int) *httpparse.Request { return httpparse.NewRequest("GET", "/c", nil) },
			Validate:    status200,
		}.Run()
		st.Close()
		if err != nil {
			return err
		}
		label := "Squid-LibreSSL"
		if mode == bench.ModeProcess {
			label = "Squid-LibSEAL"
		}
		fmt.Printf("%-18s %10.1f %12s\n", label, res.Throughput, res.Latency.Mean.Round(time.Microsecond))
	}
	return nil
}

// --- Figure 7c -------------------------------------------------------------

func runFig7c(q bool) error {
	fmt.Printf("physical CPUs on this host: %d (the paper used 4; scaling flattens at the physical core count)\n", runtime.NumCPU())
	fmt.Printf("%-8s %16s %16s\n", "cores", "apache req/s", "squid req/s")
	for cores := 1; cores <= 4; cores++ {
		prev := runtime.GOMAXPROCS(cores)
		var apacheTput, squidTput float64
		{
			st, err := bench.NewStaticStack(bench.StackOptions{Mode: bench.ModeProcess, Cost: cost(), CallMode: asyncall.ModeAsync}, 1<<10, false)
			if err != nil {
				runtime.GOMAXPROCS(prev)
				return err
			}
			res, err := bench.Load{
				Clients: 4, Requests: scale(q, 80), Warmup: 4,
				MakeClient:  func(int) *bench.Client { return st.NewClient(false) },
				MakeRequest: func(_, _ int) *httpparse.Request { return httpparse.NewRequest("GET", "/c", nil) },
				Validate:    status200,
			}.Run()
			st.Close()
			if err != nil {
				runtime.GOMAXPROCS(prev)
				return err
			}
			apacheTput = res.Throughput
		}
		{
			st, err := bench.NewSquidStack(bench.StackOptions{Mode: bench.ModeProcess, Cost: cost(), CallMode: asyncall.ModeAsync}, 1<<10)
			if err != nil {
				runtime.GOMAXPROCS(prev)
				return err
			}
			res, err := bench.Load{
				Clients: 4, Requests: scale(q, 80), Warmup: 4,
				MakeClient:  func(int) *bench.Client { return bench.NewClient(st.Dial, st.ClientConfig(), false) },
				MakeRequest: func(_, _ int) *httpparse.Request { return httpparse.NewRequest("GET", "/c", nil) },
				Validate:    status200,
			}.Run()
			st.Close()
			if err != nil {
				runtime.GOMAXPROCS(prev)
				return err
			}
			squidTput = res.Throughput
		}
		runtime.GOMAXPROCS(prev)
		fmt.Printf("%-8d %16.1f %16.1f\n", cores, apacheTput, squidTput)
	}
	return nil
}

// --- Tables 2-4 ------------------------------------------------------------

func runStatic(q bool, cm asyncall.Mode, schedulers, tasks, contentSize int) (bench.Result, error) {
	st, err := bench.NewStaticStack(bench.StackOptions{
		Mode: bench.ModeProcess, Cost: cost(), CallMode: cm,
		Schedulers: schedulers, TasksPerScheduler: tasks, AppSlots: 48, MaxThreads: 48,
	}, contentSize, false)
	if err != nil {
		return bench.Result{}, err
	}
	defer st.Close()
	return bench.Load{
		Clients:     8,
		Requests:    scale(q, 160),
		Warmup:      8,
		MakeClient:  func(int) *bench.Client { return st.NewClient(false) },
		MakeRequest: func(_, _ int) *httpparse.Request { return httpparse.NewRequest("GET", "/c", nil) },
		Validate:    status200,
	}.Run()
}

func runTable2(q bool) error {
	sizes := []struct {
		name string
		n    int
	}{{"0B", 0}, {"1KB", 1 << 10}, {"10KB", 10 << 10}, {"64KB", 64 << 10}}
	fmt.Printf("%-14s", "content size")
	for _, s := range sizes {
		fmt.Printf(" %9s", s.name)
	}
	fmt.Println()
	results := map[asyncall.Mode][]float64{}
	for _, cm := range []asyncall.Mode{asyncall.ModeSync, asyncall.ModeAsync} {
		fmt.Printf("%-14s", cm)
		for _, s := range sizes {
			res, err := runStatic(q, cm, 3, 16, s.n)
			if err != nil {
				return err
			}
			results[cm] = append(results[cm], res.Throughput)
			fmt.Printf(" %9.1f", res.Throughput)
		}
		fmt.Println()
	}
	fmt.Printf("%-14s", "improvement")
	for i := range sizes {
		fmt.Printf(" %8.0f%%", 100*(results[asyncall.ModeAsync][i]-results[asyncall.ModeSync][i])/results[asyncall.ModeSync][i])
	}
	fmt.Println("\n(req/s; the paper reports +57% to +114% — contention-driven gains need multiple physical cores)")
	return nil
}

func runTable3(q bool) error {
	fmt.Printf("%-14s %10s %12s\n", "#SGX threads", "req/s", "mean-lat")
	for _, s := range []int{1, 2, 3, 4} {
		res, err := runStatic(q, asyncall.ModeAsync, s, 48, 1<<10)
		if err != nil {
			return err
		}
		fmt.Printf("%-14d %10.1f %12s\n", s, res.Throughput, res.Latency.Mean.Round(time.Microsecond))
	}
	return nil
}

func runTable4(q bool) error {
	fmt.Printf("%-14s %10s %12s\n", "#lthreads", "req/s", "mean-lat")
	for _, t := range []int{12, 24, 36, 48} {
		res, err := runStatic(q, asyncall.ModeAsync, 3, t, 1<<10)
		if err != nil {
			return err
		}
		fmt.Printf("%-14d %10.1f %12s\n", t, res.Throughput, res.Latency.Mean.Round(time.Microsecond))
	}
	return nil
}

// --- §4.2 ------------------------------------------------------------------

func runSec42(q bool) error {
	fmt.Printf("%-14s %12s %12s %10s\n", "configuration", "ecalls/req", "ocalls/req", "req/s")
	for _, optimized := range []bool{true, false} {
		opts := tlsterm.Optimizations{}
		label := "unoptimized"
		if optimized {
			opts = tlsterm.AllOptimizations()
			label = "optimized"
		}
		st, err := bench.NewStaticStack(bench.StackOptions{
			Mode: bench.ModeProcess, Cost: cost(), CallMode: asyncall.ModeSync,
			Opts: &opts, UseExData: true,
		}, 1<<10, false)
		if err != nil {
			return err
		}
		requests := scale(q, 120)
		st.Enclave.ResetStats()
		res, err := bench.Load{
			Clients:     4,
			Requests:    requests,
			Warmup:      0,
			MakeClient:  func(int) *bench.Client { return st.NewClient(false) },
			MakeRequest: func(_, _ int) *httpparse.Request { return httpparse.NewRequest("GET", "/c", nil) },
			Validate:    status200,
		}.Run()
		stats := st.Enclave.Stats()
		st.Close()
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %12.1f %12.1f %10.1f\n", label,
			float64(stats.Ecalls)/float64(requests), float64(stats.Ocalls)/float64(requests), res.Throughput)
	}
	return nil
}

// --- §6.5 ------------------------------------------------------------------

func runSec65(bool) error {
	cases := []struct {
		name string
		mk   func() (*bench.LogFiller, error)
		unit string
	}{
		{"git", func() (*bench.LogFiller, error) { return bench.NewGitFiller(moduleFor("git")) }, "bytes per branch pointer"},
		{"owncloud", func() (*bench.LogFiller, error) { return bench.NewOwnCloudFiller(moduleFor("owncloud")) }, "bytes per retained update"},
		{"dropbox", func() (*bench.LogFiller, error) { return bench.NewDropboxFiller(moduleFor("dropbox")) }, "bytes per live file"},
	}
	for _, c := range cases {
		filler, err := c.mk()
		if err != nil {
			return err
		}
		if err := filler.Fill(400); err != nil {
			return err
		}
		if err := filler.Trim(); err != nil {
			return err
		}
		bytes, units := bench.LogFootprint(filler.DB)
		fmt.Printf("%-10s %6.0f %s (%d tuples after trimming)\n", c.name,
			float64(bytes)/float64(units), c.unit, units)
	}
	return nil
}

// --- §6.8 ------------------------------------------------------------------

func runSec68(bool) error {
	fmt.Printf("%-10s %16s\n", "threads", "wall µs/ecall")
	for _, threads := range []int{1, 8, 16, 32, 48} {
		encl, bridge, err := testutil.NewBridge(testutil.BridgeOptions{
			Mode: asyncall.ModeSync, MaxThreads: threads, Cost: cost(),
		})
		if err != nil {
			return err
		}
		const calls = 50
		start := time.Now()
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := 0; c < calls; c++ {
					_ = encl.Ecall(func(*enclave.Ctx) error { return nil })
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		bridge.Close()
		fmt.Printf("%-10d %16.1f\n", threads, float64(elapsed.Microseconds())/float64(calls))
	}
	fmt.Println("(the paper reports 8,500 cycles at 1 thread vs 170,000 at 48 — a 20x degradation)")
	return nil
}

// --- §6.2 attack detection ---------------------------------------------------

func runDetect(bool) error {
	// Git: rollback, teleport, reference deletion.
	git, err := bench.NewGitStack(bench.StackOptions{Mode: bench.ModeMem}, 0)
	if err != nil {
		return err
	}
	gc := git.NewClient(true)
	gc.Do(httpparse.NewRequest("POST", "/git/r/git-receive-pack", []byte("create main c1")))
	gc.Do(httpparse.NewRequest("POST", "/git/r/git-receive-pack", []byte("update main c2\ncreate dev d1")))
	git.Backend.InjectRollback("r", "main", "c1")
	gc.Do(httpparse.NewRequest("GET", "/git/r/info/refs", nil))
	report("git rollback", git.Seal)
	git.Seal.TrimNow()
	git.Backend.ClearFaults()
	git.Backend.InjectTeleport("r", "main", "d1")
	gc.Do(httpparse.NewRequest("GET", "/git/r/info/refs", nil))
	report("git teleport", git.Seal)
	git.Seal.TrimNow()
	git.Backend.ClearFaults()
	git.Backend.InjectRefDeletion("r", "dev")
	gc.Do(httpparse.NewRequest("GET", "/git/r/info/refs", nil))
	report("git ref deletion", git.Seal)
	gc.Close()
	git.Close()

	// ownCloud: lost edit.
	oc, err := bench.NewOwnCloudStack(bench.StackOptions{Mode: bench.ModeMem}, 0)
	if err != nil {
		return err
	}
	occ := oc.NewClient(true)
	push, _ := json.Marshal(owncloudssm.PushMsg{Doc: "d", Client: "a", Ops: []string{"x", "y"}})
	occ.Do(httpparse.NewRequest("POST", "/owncloud/push", push))
	oc.Service.SetFaults(owncloud.Faults{DropEveryNthOp: 2})
	sync, _ := json.Marshal(owncloudssm.SyncMsg{Doc: "d", Client: "b", Since: 0})
	occ.Do(httpparse.NewRequest("POST", "/owncloud/sync", sync))
	report("owncloud lost edit", oc.Seal)
	occ.Close()
	oc.Close()

	// Dropbox: corrupted blocklist and lost file.
	db, err := bench.NewDropboxStack(bench.StackOptions{Mode: bench.ModeMem}, 0)
	if err != nil {
		return err
	}
	dbc := db.NewDropboxClient(true)
	commit, _ := json.Marshal(dropboxssm.CommitBatchMsg{Account: "a", Host: "h",
		Commits: []dropboxssm.FileCommit{{File: "f1", Blocklist: "b1", Size: 1}, {File: "f2", Blocklist: "b2", Size: 2}}})
	dbc.Do(httpparse.NewRequest("POST", "/dropbox/commit_batch", commit))
	db.Service.InjectBlocklistCorruption("f1")
	dbc.Do(httpparse.NewRequest("GET", "/dropbox/list?account=a&host=h", nil))
	report("dropbox corrupted blocklist", db.Seal)
	db.Seal.TrimNow()
	db.Service.ClearFaults()
	db.Service.InjectFileLoss("f2")
	dbc.Do(httpparse.NewRequest("GET", "/dropbox/list?account=a&host=h", nil))
	report("dropbox lost file", db.Seal)
	dbc.Close()
	db.Close()

	// Messaging (the fourth scenario of §2.2): dropped, modified and
	// misdelivered messages, audited through the full stack.
	if err := runMessagingDetect(); err != nil {
		return err
	}
	return nil
}

// runMessagingDetect drives the messaging service behind a LibSEAL-audited
// Apache front end and injects each fault class.
func runMessagingDetect() error {
	cases := []struct {
		name   string
		faults messaging.Faults
	}{
		{"messaging dropped message", messaging.Faults{DropEveryNth: 1}},
		{"messaging modified message", messaging.Faults{CorruptBodies: true}},
		{"messaging misdelivery", messaging.Faults{MisdeliverTo: "eve"}},
	}
	for _, c := range cases {
		svc := messaging.NewServer()
		st, err := bench.NewCustomStack(bench.StackOptions{Mode: bench.ModeMem},
			moduleFor("messaging"), svc.Handler())
		if err != nil {
			return err
		}
		client := st.NewClient(true)
		send, _ := json.Marshal(messagingssm.SendMsg{From: "alice", To: "bob", Body: "hello"})
		client.Do(httpparse.NewRequest("POST", "/messaging/send", send))
		svc.SetFaults(c.faults)
		for _, user := range []string{"bob", "eve"} {
			inbox, _ := json.Marshal(messagingssm.InboxMsg{User: user, Since: 0})
			client.Do(httpparse.NewRequest("POST", "/messaging/inbox", inbox))
		}
		report(c.name, st.Seal)
		client.Close()
		st.Close()
	}
	return nil
}

func report(attack string, seal *libseal.LibSEAL) {
	result, err := seal.CheckNow()
	status := result
	if err != nil {
		status = "error: " + err.Error()
	}
	detected := strings.HasPrefix(result, "violation:")
	mark := "DETECTED"
	if !detected {
		mark = "MISSED"
	}
	fmt.Printf("%-30s %-9s %s\n", attack, mark, status)
}
