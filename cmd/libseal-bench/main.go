// Command libseal-bench regenerates the tables and figures of the LibSEAL
// paper's evaluation (§6) and prints them in the paper's format: one row or
// series per configuration. Absolute numbers depend on the host; the
// comparison targets are the relative shapes (see EXPERIMENTS.md).
//
// Usage:
//
//	libseal-bench -experiment fig5a
//	libseal-bench -experiment all -quick
//	libseal-bench -list
//	libseal-bench -json BENCH_pr3.json
package main

import (
	"flag"
	"fmt"
	"os"
)

// experiment is one reproducible table or figure.
type experiment struct {
	id    string
	title string
	run   func(q bool) error
}

var experiments = []experiment{
	{"table1", "Table 1: lines of code and enclave interface", runTable1},
	{"fig5a", "Figure 5a: Git throughput and latency", runFig5a},
	{"fig5b", "Figure 5b: ownCloud throughput and latency", runFig5b},
	{"fig5c", "Figure 5c: Dropbox latency", runFig5c},
	{"fig6", "Figure 6: normalized invariant checking and trimming time", runFig6},
	{"fig7a", "Figure 7a: Apache throughput and overhead vs content size", runFig7a},
	{"fig7b", "Figure 7b: Squid throughput versus latency", runFig7b},
	{"fig7c", "Figure 7c: multi-core scalability", runFig7c},
	{"table2", "Table 2: throughput with asynchronous enclave calls", runTable2},
	{"table3", "Table 3: varying the number of SGX threads", runTable3},
	{"table4", "Table 4: varying the number of lthread tasks", runTable4},
	{"sec42", "Section 4.2: transition-reduction optimisations", runSec42},
	{"sec65", "Section 6.5: log size per retained unit", runSec65},
	{"sec68", "Section 6.8: enclave transition cost vs threads", runSec68},
	{"detect", "Section 6.2: attack detection across all services", runDetect},
}

func main() {
	id := flag.String("experiment", "", "experiment id (or 'all')")
	list := flag.Bool("list", false, "list available experiments")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast pass")
	jsonOut := flag.String("json", "", "run the telemetry bench pipeline and write machine-readable results to this file")
	verifyOut := flag.String("verify-json", "", "run the parallel-verification worker sweep and write machine-readable results to this file")
	shardsOut := flag.String("shards-json", "", "run the audit-log shard sweep and write machine-readable results to this file")
	checkOut := flag.String("check-json", "", "run the snapshot-check/index sweep and write machine-readable results to this file")
	mirrorOut := flag.String("mirror-json", "", "run the live-mirror overhead and rollback-detection sweep and write machine-readable results to this file")
	flag.Parse()

	if *jsonOut != "" {
		if err := runBenchJSON(*jsonOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "libseal-bench: json: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *verifyOut != "" {
		if err := runVerifyBench(*verifyOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "libseal-bench: verify-json: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *shardsOut != "" {
		if err := runShardBench(*shardsOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "libseal-bench: shards-json: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *checkOut != "" {
		if err := runCheckBench(*checkOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "libseal-bench: check-json: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *mirrorOut != "" {
		if err := runMirrorBench(*mirrorOut, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "libseal-bench: mirror-json: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *id == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments {
			fmt.Printf("  %-8s %s\n", e.id, e.title)
		}
		if *id == "" {
			os.Exit(2)
		}
		return
	}
	var toRun []experiment
	if *id == "all" {
		toRun = experiments
	} else {
		for _, e := range experiments {
			if e.id == *id {
				toRun = []experiment{e}
			}
		}
		if len(toRun) == 0 {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *id)
			os.Exit(2)
		}
	}
	for _, e := range toRun {
		fmt.Printf("=== %s ===\n", e.title)
		if err := e.run(*quick); err != nil {
			fmt.Fprintf(os.Stderr, "libseal-bench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
