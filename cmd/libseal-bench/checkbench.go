package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"libseal/internal/audit"
	"libseal/internal/bench"
	"libseal/internal/httpparse"
	"libseal/internal/sqldb"
	"libseal/internal/ssm/gitssm"
	"libseal/internal/telemetry"
)

// The snapshot-check bench: what does an invariant check cost as the log
// grows, and what does running checks cost the request path? Part one fills
// a Git audit database to several sizes and times a full snapshot check
// with the hash indexes on and off — the acceptance bar is a >= 5x speedup
// at the largest size. Part two runs the audited Git deployment twice, with
// periodic asynchronous checks and without any, and compares append
// throughput — the bar is >= 0.9x the no-check baseline. Every disk run's
// log is strictly re-verified client-side.

type checkReport struct {
	Bench   string        `json:"bench"`
	Config  checkConfig   `json:"config"`
	Latency []latencyCell `json:"latency"`
	Appends []appendRun   `json:"appends"`
	Summary checkSummary  `json:"summary"`
}

type checkConfig struct {
	Service    string `json:"service"`
	Sizes      []int  `json:"sizes"`
	Iters      int    `json:"iters"`
	Requests   int    `json:"requests"`
	Warmup     int    `json:"warmup"`
	Clients    int    `json:"clients"`
	CheckEvery int    `json:"check_every"`
	Quick      bool   `json:"quick"`
}

// latencyCell is one (size, indexed) point: the mean wall time of a full
// check — snapshot capture plus every invariant — over the filled database.
type latencyCell struct {
	Rows        int              `json:"rows"`
	Indexed     bool             `json:"indexed"`
	MeanNS      int64            `json:"mean_ns"`
	InvariantNS map[string]int64 `json:"invariant_ns"`
	Violations  int              `json:"violations"`
}

// appendRun is one audited Git deployment run: no checks at all, periodic
// synchronous checks (the pre-snapshot design, evaluated under the log
// lock), or periodic asynchronous snapshot checks.
type appendRun struct {
	Mode            string  `json:"mode"` // "none", "sync" or "async"
	ThroughputRPS   float64 `json:"throughput_rps"`
	AppendP95NS     int64   `json:"append_p95_ns"`
	Checks          int64   `json:"checks"`
	ChecksCoalesced int64   `json:"checks_coalesced"`
	Trims           int64   `json:"trims"`
	TrimsSkipped    int64   `json:"trims_skipped"`
	CheckP95NS      int64   `json:"check_p95_ns"`
	CheckTotalNS    int64   `json:"check_total_ns"`
	TrimTotalNS     int64   `json:"trim_total_ns"`
	VerifyOK        bool    `json:"verify_ok"`
	VerifiedEntries int     `json:"verified_entries"`
}

// checkSummary holds the two acceptance numbers.
type checkSummary struct {
	// SpeedupBySize maps row count -> scan/indexed check-time ratio.
	SpeedupBySize map[string]float64 `json:"speedup_by_size"`
	// SpeedupLargest is the ratio at the largest size (bar: >= 5).
	SpeedupLargest float64 `json:"speedup_largest"`
	// ThroughputRatio is async-checked/unchecked append throughput
	// (bar: >= 0.9).
	ThroughputRatio float64 `json:"throughput_ratio"`
	// SyncThroughputRatio is sync-checked/unchecked, for comparison.
	SyncThroughputRatio float64 `json:"sync_throughput_ratio"`
}

// runCheckBench runs both parts and writes the report to path.
func runCheckBench(path string, q bool) error {
	cfg := checkConfig{
		Service: "git",
		Sizes:   []int{2_000, 8_000, 32_000},
		Iters:   3,
		// A check-and-trim cycle every 400 pairs lands ~6 cycles inside the
		// ~2 s run — one every ~350 ms, still ~30x more aggressive than the
		// paper's periodic default (§5.2 checks on a seconds-scale
		// wall-clock cadence). Every cycle here includes a trim, which
		// quiesces, rewrites, fsyncs and re-signs the log — work the
		// no-check baseline never does at all, so the throughput ratio is a
		// conservative measure of check cost.
		Requests:   scale(q, 2_400),
		Warmup:     32,
		Clients:    4,
		CheckEvery: 400,
		Quick:      q,
	}
	if q {
		cfg.Sizes = []int{500, 2_000}
		cfg.Iters = 2
		cfg.CheckEvery = 50
	}
	report := checkReport{Bench: "pr9-snapshot-checks", Config: cfg}
	report.Summary.SpeedupBySize = map[string]float64{}

	for _, size := range cfg.Sizes {
		var cells [2]latencyCell
		for i, indexed := range []bool{false, true} {
			cell, err := checkLatencyCell(size, cfg.Iters, indexed)
			if err != nil {
				return fmt.Errorf("rows=%d indexed=%v: %w", size, indexed, err)
			}
			cells[i] = cell
			report.Latency = append(report.Latency, cell)
			fmt.Printf("rows=%-6d indexed=%-5v  check %10s  (violations %d)\n",
				size, indexed, time.Duration(cell.MeanNS).Round(time.Microsecond), cell.Violations)
		}
		if cells[0].Violations != cells[1].Violations {
			return fmt.Errorf("rows=%d: scan and indexed checks disagree (%d vs %d violations)",
				size, cells[0].Violations, cells[1].Violations)
		}
		if cells[1].MeanNS > 0 {
			speedup := float64(cells[0].MeanNS) / float64(cells[1].MeanNS)
			report.Summary.SpeedupBySize[fmt.Sprint(size)] = speedup
			report.Summary.SpeedupLargest = speedup
			fmt.Printf("rows=%-6d speedup %.2fx\n", size, speedup)
		}
	}

	for _, mode := range []string{"none", "sync", "async"} {
		run, err := checkAppendRun(cfg, mode)
		if err != nil {
			return fmt.Errorf("mode=%s: %w", mode, err)
		}
		report.Appends = append(report.Appends, run)
		fmt.Printf("checks=%-6s %8.1f req/s  append p95 %8s  checks %d (coalesced %d, trims %d)  verified %d entries\n",
			mode, run.ThroughputRPS, time.Duration(run.AppendP95NS).Round(time.Microsecond),
			run.Checks, run.ChecksCoalesced, run.Trims, run.VerifiedEntries)
	}
	if base := report.Appends[0].ThroughputRPS; base > 0 {
		report.Summary.SyncThroughputRatio = report.Appends[1].ThroughputRPS / base
		report.Summary.ThroughputRatio = report.Appends[2].ThroughputRPS / base
	}
	fmt.Printf("\nindexed speedup at %d rows: %.2fx   append throughput with checks: %.2fx of baseline\n",
		cfg.Sizes[len(cfg.Sizes)-1], report.Summary.SpeedupLargest, report.Summary.ThroughputRatio)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// checkLatencyCell fills a Git audit database to size rows and times a
// full snapshot check, indexes on or off. Each iteration captures a fresh
// snapshot — exactly what the live check path does — so the indexed cell
// pays the lazy index build too, not just the probes.
func checkLatencyCell(size, iters int, indexed bool) (latencyCell, error) {
	cell := latencyCell{Rows: size, Indexed: indexed, InvariantNS: map[string]int64{}}
	module := gitssm.New()
	db := sqldb.New()
	if _, err := db.Exec(module.Schema()); err != nil {
		return cell, err
	}
	db.SetIndexing(indexed)
	if err := fillGitDB(db, size); err != nil {
		return cell, err
	}
	invs := module.Invariants()
	run := func(record bool) error {
		snap := db.Snapshot()
		for _, inv := range invs {
			t0 := time.Now()
			res, err := snap.Query(inv.SQL)
			if err != nil {
				return fmt.Errorf("%s: %w", inv.Name, err)
			}
			if record {
				cell.InvariantNS[inv.Name] += time.Since(t0).Nanoseconds()
				cell.Violations += len(res.Rows)
			}
		}
		return nil
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := run(i == 0); err != nil {
			return cell, err
		}
	}
	cell.MeanNS = time.Since(t0).Nanoseconds() / int64(iters)
	return cell, nil
}

// Latency-cell workload shape: a hosting service audits many repositories,
// not one, so equality predicates on (repo, branch) are selective — the
// case hash indexes exist for. A single-repo history (the Fig. 6 filler)
// is the degenerate case where every row shares the join key and an index
// cannot beat the cross product.
const (
	fillRepos    = 20
	fillBranches = 8
)

// fillGitDB writes a consistent multi-repo Git history directly into the
// audit schema: round-robin pushes across fillRepos × fillBranches
// branches, with one full-repository advertisement every tenth round. The
// advertised heads always match the latest update, so a correct engine
// reports zero violations — which the caller cross-checks between the
// indexed and scan cells.
func fillGitDB(db *sqldb.DB, rows int) error {
	heads := make(map[string]string)
	clock, total, round := 0, 0, 0
	for total < rows {
		round++
		for r := 0; r < fillRepos && total < rows; r++ {
			repo := fmt.Sprintf("repo%02d", r)
			branch := fmt.Sprintf("b%02d", (round+r)%fillBranches)
			clock++
			cid := fmt.Sprintf("c%08d", clock)
			if _, err := db.Exec("INSERT INTO updates VALUES (?,?,?,?,?)",
				clock, repo, branch, cid, "update"); err != nil {
				return err
			}
			heads[repo+"/"+branch] = cid
			total++
		}
		if round%10 == 0 && total+fillBranches <= rows {
			repo := fmt.Sprintf("repo%02d", (round/10)%fillRepos)
			clock++
			for b := 0; b < fillBranches; b++ {
				branch := fmt.Sprintf("b%02d", b)
				cid, live := heads[repo+"/"+branch]
				if !live {
					continue
				}
				if _, err := db.Exec("INSERT INTO advertisements VALUES (?,?,?,?)",
					clock, repo, branch, cid); err != nil {
					return err
				}
				total++
			}
		}
	}
	return nil
}

// checkAppendRun measures append throughput of the audited disk-mode Git
// deployment under one check mode. Short closed-loop runs are noisy, so it
// takes the best of three attempts; every attempt's log is still strictly
// re-verified.
func checkAppendRun(cfg checkConfig, mode string) (appendRun, error) {
	var best appendRun
	for i := 0; i < 3; i++ {
		run, err := checkAppendOnce(cfg, mode)
		if err != nil {
			return run, err
		}
		if run.ThroughputRPS > best.ThroughputRPS {
			best = run
		}
	}
	return best, nil
}

// checkAppendOnce is one deployment, load run and log verification.
func checkAppendOnce(cfg checkConfig, mode string) (appendRun, error) {
	run := appendRun{Mode: mode}
	dir, err := os.MkdirTemp("", "libseal-checkbench-*")
	if err != nil {
		return run, err
	}
	defer os.RemoveAll(dir)

	opts := bench.StackOptions{
		Mode:            bench.ModeDisk,
		Cost:            cost(),
		AuditDir:        dir,
		AuditBatchMax:   16,
		AuditBatchDelay: 750 * time.Microsecond,
	}
	if mode != "none" {
		opts.CheckEvery = cfg.CheckEvery
		opts.CheckAsync = mode == "async"
	}
	st, err := bench.NewGitStack(opts, 500*time.Microsecond)
	if err != nil {
		return run, err
	}
	pub := st.Enclave.PublicKey()
	group := st.Group

	telemetry.Reset()
	res, err := bench.Load{
		Clients:    cfg.Clients,
		Requests:   cfg.Requests,
		Warmup:     cfg.Warmup,
		MakeClient: func(int) *bench.Client { return st.NewClient(true) },
		MakeRequest: func(worker, seq int) *httpparse.Request {
			repo := fmt.Sprintf("repo%d", worker)
			if seq%10 == 9 {
				return httpparse.NewRequest("GET", "/git/"+repo+"/info/refs", nil)
			}
			return httpparse.NewRequest("POST", "/git/"+repo+"/git-receive-pack",
				[]byte(fmt.Sprintf("update main c%d", seq)))
		},
		Validate: status200,
	}.Run()
	if err != nil {
		st.Close()
		return run, err
	}
	run.ThroughputRPS = res.Throughput
	if m, ok := telemetry.Get("audit.append.latency"); ok {
		run.AppendP95NS = m.P95
	}
	if m, ok := telemetry.Get("audit.check.latency"); ok {
		run.CheckP95NS = m.P95
		run.CheckTotalNS = m.Sum
	}
	if m, ok := telemetry.Get("audit.trim.latency"); ok {
		run.TrimTotalNS = m.Sum
	}
	stats := st.Seal.StatsSnapshot()
	run.Checks = stats.Checks
	run.ChecksCoalesced = stats.ChecksCoalesced
	run.Trims = stats.Trims
	run.TrimsSkipped = stats.TrimsSkipped

	st.Close()
	vres, err := bench.VerifyLog(filepath.Join(dir, "git.lseal"), audit.VerifyOptions{
		Pub: pub, Protector: group, Name: "git",
	})
	if err != nil {
		return run, fmt.Errorf("client-side verification: %w", err)
	}
	run.VerifyOK = true
	run.VerifiedEntries = vres.TotalEntries
	return run, nil
}
