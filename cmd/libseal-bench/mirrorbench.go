package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/audit/mirror"
	"libseal/internal/enclave"
	"libseal/internal/rote"
)

// The mirror bench answers the PR 10 acceptance questions: how much append
// throughput does one live mirror cost the server (target: ≤5% — the feed
// reads committed files outside the append path, so the only coupling is
// disk and CPU contention), and how quickly does a mirror turn a single-
// shard rollback into a violation (target: within one manifest interval
// plus the restart grace). The sweep runs the same sharded append workload
// unmirrored and mirrored, then stages the rollback e2e: truncate one shard
// behind the log's back, drop the link, and time the reconnected mirror's
// ErrBadCounter.

const mirrorBenchSchema = `CREATE TABLE ops (time INTEGER, client INTEGER, op TEXT);`

type mirrorReport struct {
	Bench   string            `json:"bench"`
	Config  mirrorBenchConfig `json:"config"`
	Runs    []mirrorRun       `json:"runs"`
	Detect  mirrorDetect      `json:"rollback_detection"`
	Summary mirrorSummary     `json:"summary"`
}

type mirrorBenchConfig struct {
	Clients       int   `json:"clients"`
	Entries       int   `json:"entries_per_run"`
	Shards        int   `json:"shards"`
	BatchMax      int   `json:"batch_max"`
	RowsPerStage  int   `json:"rows_per_stage"`
	RoteLatencyUS int64 `json:"rote_latency_us"`
	Quick         bool  `json:"quick"`
	MaxProcs      int   `json:"gomaxprocs"`
}

type mirrorRun struct {
	Mirrored  bool    `json:"mirrored"`
	NS        int64   `json:"ns"`
	EntriesPS float64 `json:"entries_per_sec"`

	// Mirrored runs only: how far behind the mirror was when the appenders
	// finished, and how long it took to drain to zero lag afterwards.
	CatchupNS      int64 `json:"catchup_ns,omitempty"`
	MirroredSeqs   int   `json:"mirror_verified_entries,omitempty"`
	MirrorRestarts int   `json:"mirror_restarts,omitempty"`
}

type mirrorDetect struct {
	// DetectNS is truncate-to-violation: the rollback happens, the link
	// drops, the mirror reconnects into the tampered stream and must latch
	// ErrBadCounter.
	DetectNS   int64  `json:"detect_ns"`
	Violation  string `json:"violation"`
	IsRollback bool   `json:"is_rollback_verdict"`
}

type mirrorSummary struct {
	// ThroughputRatio is mirrored/unmirrored appends per second; the PR 10
	// acceptance bar is ≥0.95.
	ThroughputRatio   float64 `json:"throughput_ratio"`
	OverheadPercent   float64 `json:"overhead_percent"`
	DetectLatencyMS   float64 `json:"detect_latency_ms"`
	MeetsOverheadBar  bool    `json:"meets_overhead_bar"`
	MeetsDetectionBar bool    `json:"meets_detection_bar"`
}

// mirrorBenchEnv is one live sharded server: enclave, counter group, log,
// and optionally a feed listening on loopback.
type mirrorBenchEnv struct {
	encl   *enclave.Enclave
	bridge *asyncall.Bridge
	group  *rote.Group
	dir    string
	log    *audit.ShardedLog
	feed   *mirror.Feed
	addr   string
}

func (e *mirrorBenchEnv) close() {
	if e.feed != nil {
		e.feed.Close()
	}
	if e.log != nil {
		e.log.Close()
	}
	if e.bridge != nil {
		e.bridge.Close()
	}
	if e.dir != "" {
		os.RemoveAll(e.dir)
	}
}

func newMirrorBenchEnv(shards, batchMax int, roteLatency time.Duration, withFeed bool) (*mirrorBenchEnv, error) {
	e := &mirrorBenchEnv{}
	p := enclave.NewPlatform()
	encl, err := p.Launch(enclave.Config{
		Code: []byte("libseal-mirror-bench"), MaxThreads: 32, Cost: enclave.ZeroCostModel(),
	})
	if err != nil {
		return nil, err
	}
	e.encl = encl
	if e.bridge, err = asyncall.New(encl, asyncall.Config{Mode: asyncall.ModeSync}); err != nil {
		return nil, err
	}
	if e.group, err = rote.NewGroup(1, roteLatency); err != nil {
		e.close()
		return nil, err
	}
	if e.dir, err = os.MkdirTemp("", "libseal-mirror-bench-*"); err != nil {
		e.close()
		return nil, err
	}
	cfg := audit.ShardedConfig{
		Config: audit.Config{
			Name: "bench", Schema: mirrorBenchSchema, Mode: audit.ModeDisk,
			Dir: e.dir, Protector: e.group,
			BatchMax: batchMax, BatchDelay: 200 * time.Microsecond,
			AnchorTimeout: 5 * time.Second,
		},
		Shards:        shards,
		ManifestEvery: 100 * time.Millisecond,
	}
	if err := e.bridge.Call(func(env *asyncall.Env) error {
		var err error
		e.log, err = audit.NewSharded(env, cfg)
		return err
	}); err != nil {
		e.close()
		return nil, err
	}
	if withFeed {
		feed, err := mirror.NewFeed(mirror.FeedConfig{Log: e.log, Dir: e.dir, Name: "bench"})
		if err != nil {
			e.close()
			return nil, err
		}
		e.feed = feed
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			e.close()
			return nil, err
		}
		e.addr = ln.Addr().String()
		go feed.Serve(ln)
	}
	return e, nil
}

// drive runs the append workload and returns the elapsed time.
func (e *mirrorBenchEnv) drive(clients, entries, rowsPerStage int) (time.Duration, error) {
	perClient := entries / clients / rowsPerStage
	var wg sync.WaitGroup
	errs := make([]error, clients)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			key := uint64(c)
			rows := make([]audit.Row, rowsPerStage)
			for i := 0; i < perClient; i++ {
				for j := range rows {
					rows[j] = audit.Row{Table: "ops", Values: []any{i, c, "put"}}
				}
				err := e.bridge.Call(func(env *asyncall.Env) error {
					tk, err := e.log.Stage(env, key, rows)
					if err != nil {
						return err
					}
					if err := tk.Wait(env); err != nil {
						return err
					}
					return e.log.ManifestIfDue(env)
				})
				if err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	for c, err := range errs {
		if err != nil {
			return elapsed, fmt.Errorf("client %d: %w", c, err)
		}
	}
	return elapsed, nil
}

func waitMirror(m *mirror.Mirror, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		s := m.Status()
		if s.Err != nil {
			return s.Err
		}
		if s.CaughtUp && s.LagBytes == 0 && s.Connected && s.Entries >= want {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	s := m.Status()
	return fmt.Errorf("mirror never caught up: entries=%d want=%d lag=%d", s.Entries, want, s.LagBytes)
}

// runMirrorBench is the -mirror-json pipeline.
func runMirrorBench(path string, q bool) error {
	clients := 8
	entries := 24_000
	if q {
		entries = 4_000
	}
	const (
		shards       = 4
		batchMax     = 64
		rowsPerStage = 8
		// ROTE anchoring is a network quorum round trip in the paper's
		// deployment (~2ms). With realistic anchor latency the appenders are
		// latency-bound, which is the regime the ≤5% overhead claim is about:
		// the feed itself costs almost nothing, and on this single-core bench
		// box the colocated mirror's signature verification runs inside the
		// appenders' anchor-wait gaps. (In production the mirror is separate
		// hardware and its verify CPU is not the server's problem at all.)
		roteLatency = 2 * time.Millisecond
	)
	report := mirrorReport{
		Bench: "pr10-live-mirror",
		Config: mirrorBenchConfig{
			Clients: clients, Entries: entries, Shards: shards, BatchMax: batchMax,
			RowsPerStage: rowsPerStage, RoteLatencyUS: roteLatency.Microseconds(),
			Quick: q, MaxProcs: runtime.GOMAXPROCS(0),
		},
	}
	staged := entries / clients / rowsPerStage * rowsPerStage * clients
	reps := 2
	if q {
		reps = 1
	}

	// Baseline: no feed, no mirror. Best of reps — on a shared box the
	// scheduler adds run-to-run noise the sweep should not report as
	// mirroring overhead.
	baseRun := mirrorRun{}
	for rep := 0; rep < reps; rep++ {
		base, err := newMirrorBenchEnv(shards, batchMax, roteLatency, false)
		if err != nil {
			return err
		}
		elapsed, err := base.drive(clients, entries, rowsPerStage)
		base.close()
		if err != nil {
			return fmt.Errorf("baseline run: %w", err)
		}
		run := mirrorRun{NS: elapsed.Nanoseconds(), EntriesPS: float64(staged) / elapsed.Seconds()}
		report.Runs = append(report.Runs, run)
		if run.EntriesPS > baseRun.EntriesPS {
			baseRun = run
		}
		fmt.Printf("unmirrored  %.2fs (%.0f entries/s)\n", elapsed.Seconds(), run.EntriesPS)
	}

	// Mirrored: same workload with one live mirror attached throughout. The
	// last rep's env and mirror stay live for the rollback stage.
	var (
		e        *mirrorBenchEnv
		m        *mirror.Mirror
		mirRun   mirrorRun
		violated = make(chan error, 1)
	)
	for rep := 0; rep < reps; rep++ {
		var err error
		e, err = newMirrorBenchEnv(shards, batchMax, roteLatency, true)
		if err != nil {
			return err
		}
		m, err = mirror.Start(context.Background(), mirror.Config{
			Addr: e.addr, Name: "bench", Pub: e.encl.PublicKey(),
			BackoffMin: 10 * time.Millisecond, RestartGrace: 400 * time.Millisecond,
			OnViolation: func(err error) {
				select {
				case violated <- err:
				default:
				}
			},
		})
		if err != nil {
			e.close()
			return err
		}
		elapsed, err := e.drive(clients, entries, rowsPerStage)
		if err != nil {
			return fmt.Errorf("mirrored run: %w", err)
		}
		tCatch := time.Now()
		if err := waitMirror(m, staged, 60*time.Second); err != nil {
			return err
		}
		s := m.Status()
		run := mirrorRun{
			Mirrored: true, NS: elapsed.Nanoseconds(),
			EntriesPS:    float64(staged) / elapsed.Seconds(),
			CatchupNS:    time.Since(tCatch).Nanoseconds(),
			MirroredSeqs: s.Entries, MirrorRestarts: s.Restarts,
		}
		report.Runs = append(report.Runs, run)
		if run.EntriesPS > mirRun.EntriesPS {
			mirRun = run
		}
		fmt.Printf("mirrored    %.2fs (%.0f entries/s, catch-up %.0fms, %d entries verified live)\n",
			elapsed.Seconds(), run.EntriesPS, float64(run.CatchupNS)/1e6, s.Entries)
		if rep < reps-1 {
			m.Stop(context.Background())
			e.close()
		}
	}
	defer e.close()
	defer m.Stop(context.Background())

	// Rollback detection: record a committed boundary on one shard, append
	// past it, truncate back, drop the link, and time the verdict.
	const victim = 0
	victimPath := filepath.Join(e.dir, audit.ShardName("bench", victim)+".lseal")
	fi, err := os.Stat(victimPath)
	if err != nil {
		return err
	}
	rollbackTo := fi.Size()
	victimKey := uint64(0)
	for e.log.ShardFor(victimKey) != victim {
		victimKey++
	}
	if err := e.bridge.Call(func(env *asyncall.Env) error {
		for i := 0; i < 64; i++ {
			if err := e.log.Append(env, victimKey, "ops", i, 0, "post"); err != nil {
				return err
			}
		}
		return e.log.ManifestIfDue(env)
	}); err != nil {
		return err
	}
	if err := waitMirror(m, staged+64, 30*time.Second); err != nil {
		return err
	}
	t0 := time.Now()
	if err := os.Truncate(victimPath, rollbackTo); err != nil {
		return err
	}
	e.feed.DisconnectAll()
	select {
	case verr := <-violated:
		report.Detect.DetectNS = time.Since(t0).Nanoseconds()
		report.Detect.Violation = verr.Error()
		report.Detect.IsRollback = errors.Is(verr, audit.ErrBadCounter)
	case <-time.After(30 * time.Second):
		return fmt.Errorf("rollback never detected; status %+v", m.Status())
	}
	fmt.Printf("rollback detected in %.0fms: %s\n",
		float64(report.Detect.DetectNS)/1e6, report.Detect.Violation)

	report.Summary.ThroughputRatio = mirRun.EntriesPS / baseRun.EntriesPS
	report.Summary.OverheadPercent = (1 - report.Summary.ThroughputRatio) * 100
	report.Summary.DetectLatencyMS = float64(report.Detect.DetectNS) / 1e6
	report.Summary.MeetsOverheadBar = report.Summary.ThroughputRatio >= 0.95
	report.Summary.MeetsDetectionBar = report.Detect.IsRollback &&
		report.Summary.DetectLatencyMS < 2000
	fmt.Printf("\nthroughput with one mirror: %.2fx of unmirrored (%.1f%% overhead), detection %.0fms\n",
		report.Summary.ThroughputRatio, report.Summary.OverheadPercent, report.Summary.DetectLatencyMS)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
