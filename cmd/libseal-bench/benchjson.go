package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"libseal/internal/bench"
	"libseal/internal/httpparse"
	"libseal/internal/telemetry"
)

// benchReport is the machine-readable result of the telemetry pipeline. One
// file per PR (BENCH_pr<N>.json) gives the repo a comparable perf trajectory:
// every entry in Metrics carries its unit in Units, and the off/on throughput
// pair bounds the instrumentation's own overhead.
type benchReport struct {
	Bench   string             `json:"bench"`
	Config  benchConfig        `json:"config"`
	Metrics map[string]float64 `json:"metrics"`
	Units   map[string]string  `json:"units"`
	// Throughput of the identical workload with telemetry disabled/enabled
	// (requests per second), and the relative cost of observation.
	ThroughputOffRPS float64 `json:"throughput_off_rps"`
	ThroughputOnRPS  float64 `json:"throughput_on_rps"`
	OverheadPct      float64 `json:"overhead_pct"`
}

type benchConfig struct {
	Service    string `json:"service"`
	Mode       string `json:"mode"`
	Clients    int    `json:"clients"`
	Requests   int    `json:"requests"`
	Warmup     int    `json:"warmup"`
	CheckEvery int    `json:"check_every"`
	Quick      bool   `json:"quick"`
}

// runBenchJSON drives the audited Git deployment (disk mode: every append
// pays the hash chain, signature, fsync and ROTE anchor) twice — telemetry
// off, then on — and writes the enabled run's metric snapshot plus the
// throughput comparison to path.
func runBenchJSON(path string, q bool) error {
	cfg := benchConfig{
		Service:    "git",
		Mode:       bench.ModeDisk.String(),
		Clients:    4,
		Requests:   scale(q, 240),
		Warmup:     8,
		CheckEvery: 20,
		Quick:      q,
	}

	run := func() (bench.Result, error) {
		st, err := bench.NewGitStack(bench.StackOptions{
			Mode: bench.ModeDisk, Cost: cost(), CheckEvery: cfg.CheckEvery,
		}, 500*time.Microsecond)
		if err != nil {
			return bench.Result{}, err
		}
		defer st.Close()
		return bench.Load{
			Clients:    cfg.Clients,
			Requests:   cfg.Requests,
			Warmup:     cfg.Warmup,
			MakeClient: func(int) *bench.Client { return st.NewClient(true) },
			MakeRequest: func(worker, seq int) *httpparse.Request {
				repo := fmt.Sprintf("repo%d", worker)
				if seq%10 == 9 {
					return httpparse.NewRequest("GET", "/git/"+repo+"/info/refs", nil)
				}
				return httpparse.NewRequest("POST", "/git/"+repo+"/git-receive-pack",
					[]byte(fmt.Sprintf("update main c%d", seq)))
			},
			Validate: status200,
		}.Run()
	}

	// Baseline: identical workload with every metric update disabled.
	telemetry.SetEnabled(false)
	resOff, err := run()
	if err != nil {
		telemetry.SetEnabled(true)
		return err
	}

	// Measured run: telemetry on, counters zeroed so the snapshot covers
	// exactly this run.
	telemetry.SetEnabled(true)
	telemetry.Reset()
	resOn, err := run()
	if err != nil {
		return err
	}

	report := benchReport{
		Bench:            "pr3-telemetry",
		Config:           cfg,
		Metrics:          make(map[string]float64),
		Units:            make(map[string]string),
		ThroughputOffRPS: resOff.Throughput,
		ThroughputOnRPS:  resOn.Throughput,
	}
	if resOff.Throughput > 0 {
		report.OverheadPct = 100 * (resOff.Throughput - resOn.Throughput) / resOff.Throughput
	}
	for _, m := range telemetry.Snapshot() {
		switch m.Type {
		case "histogram":
			report.Metrics[m.Name+".count"] = float64(m.Value)
			report.Units[m.Name+".count"] = "observations"
			if m.Value > 0 {
				for suffix, v := range map[string]float64{
					".mean": m.Mean,
					".min":  float64(m.Min),
					".max":  float64(m.Max),
					".p50":  float64(m.P50),
					".p95":  float64(m.P95),
					".p99":  float64(m.P99),
				} {
					report.Metrics[m.Name+suffix] = v
					report.Units[m.Name+suffix] = m.Unit
				}
			}
		default:
			report.Metrics[m.Name] = float64(m.Value)
			report.Units[m.Name] = m.Unit
		}
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("telemetry bench: off %.1f req/s, on %.1f req/s (overhead %.2f%%)\n",
		resOff.Throughput, resOn.Throughput, report.OverheadPct)
	fmt.Printf("wrote %s (%d metrics)\n", path, len(report.Metrics))
	return nil
}
