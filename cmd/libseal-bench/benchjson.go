package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/bench"
	"libseal/internal/httpparse"
	"libseal/internal/telemetry"
)

// pr3BaselineRPS is the audited disk-mode throughput recorded in
// BENCH_pr3.json (4 clients, sync bridge, no batching) — the reference the
// group-commit sweep is compared against.
const pr3BaselineRPS = 710.0

// benchReport is the machine-readable result of the group-commit sweep:
// {batch off/on} × {sync/async bridge} × clients {1,4,16} over the audited
// Git deployment in disk mode. Each run records throughput, append latency
// quantiles and the absolute and per-request counts of the three costs group
// commit amortises (fsyncs, signatures, counter increments), plus a strict
// client-side verification of the log the run produced.
type benchReport struct {
	Bench   string      `json:"bench"`
	Config  sweepConfig `json:"config"`
	Runs    []sweepRun  `json:"runs"`
	Summary summary     `json:"summary"`
}

type sweepConfig struct {
	Service      string  `json:"service"`
	Mode         string  `json:"mode"`
	Requests     int     `json:"requests"`
	Warmup       int     `json:"warmup"`
	CheckEvery   int     `json:"check_every"`
	BatchMax     int     `json:"batch_max"`
	BatchDelayUS int     `json:"batch_delay_us"`
	Quick        bool    `json:"quick"`
	BaselinePR3  float64 `json:"baseline_pr3_rps"`
}

type sweepRun struct {
	Batch    bool   `json:"batch"`
	CallMode string `json:"call_mode"`
	Clients  int    `json:"clients"`

	ThroughputRPS float64 `json:"throughput_rps"`
	AppendP50NS   int64   `json:"append_p50_ns"`
	AppendP95NS   int64   `json:"append_p95_ns"`
	AppendP99NS   int64   `json:"append_p99_ns"`

	Fsyncs            int64 `json:"fsyncs"`
	Signatures        int64 `json:"signatures"`
	CounterIncrements int64 `json:"counter_increments"`
	SyncCalls         int64 `json:"sync_calls"`
	AsyncCalls        int64 `json:"async_calls"`
	BatchCommits      int64 `json:"batch_commits"`

	FsyncsPerReq     float64 `json:"fsyncs_per_req"`
	SignaturesPerReq float64 `json:"signatures_per_req"`
	IncrementsPerReq float64 `json:"increments_per_req"`
	BatchSizeMean    float64 `json:"batch_size_mean"`

	VerifyOK        bool `json:"verify_ok"`
	VerifiedEntries int  `json:"verified_entries"`
}

// summary compares batching off/on at the largest client count, per bridge
// mode: the acceptance bar is a >= 4x reduction in fsyncs and signatures per
// request and a throughput improvement over the PR 3 baseline.
type summary struct {
	Clients               int     `json:"clients"`
	SyncFsyncReduction    float64 `json:"sync_fsync_reduction"`
	SyncSigReduction      float64 `json:"sync_signature_reduction"`
	SyncCounterReduction  float64 `json:"sync_counter_reduction"`
	SyncSpeedup           float64 `json:"sync_speedup"`
	AsyncFsyncReduction   float64 `json:"async_fsync_reduction"`
	AsyncSigReduction     float64 `json:"async_signature_reduction"`
	AsyncCounterReduction float64 `json:"async_counter_reduction"`
	AsyncSpeedup          float64 `json:"async_speedup"`
	BestBatchedRPS        float64 `json:"best_batched_rps"`
	VsPR3Baseline         float64 `json:"best_batched_vs_pr3_baseline"`
}

// runBenchJSON sweeps the audited Git deployment (disk mode: hash chain,
// signature, fsync and ROTE anchor on the append path) over batch off/on,
// sync/async enclave transitions and 1/4/16 clients, verifies every log it
// wrote, and writes the machine-readable report to path.
func runBenchJSON(path string, q bool) error {
	cfg := sweepConfig{
		Service:      "git",
		Mode:         bench.ModeDisk.String(),
		Requests:     scale(q, 480),
		Warmup:       16,
		CheckEvery:   20,
		BatchMax:     16,
		BatchDelayUS: 750,
		Quick:        q,
		BaselinePR3:  pr3BaselineRPS,
	}
	report := benchReport{Bench: "pr4-group-commit", Config: cfg}

	for _, batch := range []bool{false, true} {
		for _, mode := range []asyncall.Mode{asyncall.ModeSync, asyncall.ModeAsync} {
			for _, clients := range []int{1, 4, 16} {
				run, err := sweepOne(cfg, batch, mode, clients)
				if err != nil {
					return fmt.Errorf("batch=%v mode=%s clients=%d: %w", batch, mode, clients, err)
				}
				report.Runs = append(report.Runs, run)
				fmt.Printf("batch=%-5v bridge=%-5s clients=%-2d  %8.1f req/s  p95 %6s  fsync/req %.3f  sig/req %.3f  anchor/req %.3f\n",
					batch, mode, clients, run.ThroughputRPS,
					time.Duration(run.AppendP95NS).Round(time.Microsecond),
					run.FsyncsPerReq, run.SignaturesPerReq, run.IncrementsPerReq)
			}
		}
	}

	report.Summary = summarize(report.Runs)
	printDeltaTable(report.Runs)
	fmt.Printf("\nbest batched throughput: %.1f req/s (%.2fx the PR 3 baseline of %.0f req/s)\n",
		report.Summary.BestBatchedRPS, report.Summary.VsPR3Baseline, pr3BaselineRPS)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d runs)\n", path, len(report.Runs))
	return nil
}

// sweepOne executes one cell of the sweep and verifies the log it produced.
func sweepOne(cfg sweepConfig, batch bool, mode asyncall.Mode, clients int) (sweepRun, error) {
	run := sweepRun{Batch: batch, CallMode: mode.String(), Clients: clients}

	dir, err := os.MkdirTemp("", "libseal-bench-*")
	if err != nil {
		return run, err
	}
	defer os.RemoveAll(dir)

	opts := bench.StackOptions{
		Mode:       bench.ModeDisk,
		Cost:       cost(),
		CallMode:   mode,
		CheckEvery: cfg.CheckEvery,
		AuditDir:   dir,
	}
	if batch {
		opts.AuditBatchMax = cfg.BatchMax
		opts.AuditBatchDelay = time.Duration(cfg.BatchDelayUS) * time.Microsecond
	}
	st, err := bench.NewGitStack(opts, 500*time.Microsecond)
	if err != nil {
		return run, err
	}
	pub := st.Enclave.PublicKey()
	group := st.Group

	telemetry.Reset()
	res, err := bench.Load{
		Clients:    clients,
		Requests:   cfg.Requests,
		Warmup:     cfg.Warmup,
		MakeClient: func(int) *bench.Client { return st.NewClient(true) },
		MakeRequest: func(worker, seq int) *httpparse.Request {
			repo := fmt.Sprintf("repo%d", worker)
			if seq%10 == 9 {
				return httpparse.NewRequest("GET", "/git/"+repo+"/info/refs", nil)
			}
			return httpparse.NewRequest("POST", "/git/"+repo+"/git-receive-pack",
				[]byte(fmt.Sprintf("update main c%d", seq)))
		},
		Validate: status200,
	}.Run()
	if err != nil {
		st.Close()
		return run, err
	}

	run.ThroughputRPS = res.Throughput
	if m, ok := telemetry.Get("audit.append.latency"); ok {
		run.AppendP50NS, run.AppendP95NS, run.AppendP99NS = m.P50, m.P95, m.P99
	}
	counter := func(name string) int64 {
		m, _ := telemetry.Get(name)
		return m.Value
	}
	run.Fsyncs = counter("audit.fsyncs")
	run.Signatures = counter("audit.signatures")
	run.CounterIncrements = counter("rote.increments")
	run.SyncCalls = counter("asyncall.sync_calls")
	run.AsyncCalls = counter("asyncall.async_calls")
	run.BatchCommits = counter("audit.batch.commits")
	if m, ok := telemetry.Get("audit.batch.size"); ok && m.Value > 0 {
		run.BatchSizeMean = m.Mean
	}
	reqs := float64(cfg.Requests)
	run.FsyncsPerReq = float64(run.Fsyncs) / reqs
	run.SignaturesPerReq = float64(run.Signatures) / reqs
	run.IncrementsPerReq = float64(run.CounterIncrements) / reqs

	// Tear the stack down (flushing and closing the log), then verify the
	// produced file exactly as an auditing client would: strict mode, no
	// truncation tolerance, counter freshness against the live group.
	st.Close()
	vres, err := bench.VerifyLog(filepath.Join(dir, "git.lseal"), audit.VerifyOptions{
		Pub: pub, Protector: group, Name: "git",
	})
	if err != nil {
		return run, fmt.Errorf("client-side verification of batched log: %w", err)
	}
	run.VerifyOK = true
	run.VerifiedEntries = vres.TotalEntries
	return run, nil
}

// summarize computes the off/on reduction factors at the largest client
// count for both bridge modes.
func summarize(runs []sweepRun) summary {
	maxClients := 0
	for _, r := range runs {
		if r.Clients > maxClients {
			maxClients = r.Clients
		}
	}
	s := summary{Clients: maxClients}
	find := func(batch bool, mode string) *sweepRun {
		for i := range runs {
			r := &runs[i]
			if r.Batch == batch && r.CallMode == mode && r.Clients == maxClients {
				return r
			}
		}
		return nil
	}
	ratio := func(off, on float64) float64 {
		if on <= 0 {
			return 0
		}
		return off / on
	}
	if off, on := find(false, "sync"), find(true, "sync"); off != nil && on != nil {
		s.SyncFsyncReduction = ratio(off.FsyncsPerReq, on.FsyncsPerReq)
		s.SyncSigReduction = ratio(off.SignaturesPerReq, on.SignaturesPerReq)
		s.SyncCounterReduction = ratio(off.IncrementsPerReq, on.IncrementsPerReq)
		s.SyncSpeedup = ratio(on.ThroughputRPS, off.ThroughputRPS)
	}
	if off, on := find(false, "async"), find(true, "async"); off != nil && on != nil {
		s.AsyncFsyncReduction = ratio(off.FsyncsPerReq, on.FsyncsPerReq)
		s.AsyncSigReduction = ratio(off.SignaturesPerReq, on.SignaturesPerReq)
		s.AsyncCounterReduction = ratio(off.IncrementsPerReq, on.IncrementsPerReq)
		s.AsyncSpeedup = ratio(on.ThroughputRPS, off.ThroughputRPS)
	}
	for _, r := range runs {
		if r.Batch && r.ThroughputRPS > s.BestBatchedRPS {
			s.BestBatchedRPS = r.ThroughputRPS
		}
	}
	s.VsPR3Baseline = s.BestBatchedRPS / pr3BaselineRPS
	return s
}

// printDeltaTable prints the off/on comparison per bridge mode and client
// count (the `make bench-compare` output).
func printDeltaTable(runs []sweepRun) {
	find := func(batch bool, mode string, clients int) *sweepRun {
		for i := range runs {
			r := &runs[i]
			if r.Batch == batch && r.CallMode == mode && r.Clients == clients {
				return r
			}
		}
		return nil
	}
	fmt.Printf("\n%-7s %-8s %12s %12s %8s %14s %14s %14s\n",
		"bridge", "clients", "off req/s", "on req/s", "speedup", "fsync/req", "sig/req", "anchor/req")
	for _, mode := range []string{"sync", "async"} {
		for _, clients := range []int{1, 4, 16} {
			off, on := find(false, mode, clients), find(true, mode, clients)
			if off == nil || on == nil {
				continue
			}
			speedup := 0.0
			if off.ThroughputRPS > 0 {
				speedup = on.ThroughputRPS / off.ThroughputRPS
			}
			fmt.Printf("%-7s %-8d %12.1f %12.1f %7.2fx %6.3f->%-6.3f %6.3f->%-6.3f %6.3f->%-6.3f\n",
				mode, clients, off.ThroughputRPS, on.ThroughputRPS, speedup,
				off.FsyncsPerReq, on.FsyncsPerReq,
				off.SignaturesPerReq, on.SignaturesPerReq,
				off.IncrementsPerReq, on.IncrementsPerReq)
		}
	}
}
