// Command libseal-mirror runs a live audit-log follower: it connects to a
// libseal-server's replication feed (-mirror-addr on the server side) and
// continuously re-verifies the log as it grows — hash chain, per-batch
// enclave signatures, epoch-manifest replay, rollback-counter continuity —
// holding nothing but the enclave's public key. The feed is untrusted
// plumbing: a compromised server can withhold bytes (bounded by -max-lag)
// but cannot make tampered or rolled-back bytes verify.
//
// The mirror persists a resume checkpoint, so a restarted mirror continues
// from its verified prefix instead of rescanning, after re-proving the
// checkpoint against the server's signature records. A detected violation
// latches, prints, and exits non-zero: from that point the log's attestation
// is void and the evidence should be preserved.
//
// Usage:
//
//	libseal-mirror -addr host:9443 -service git -pub audit/enclave.pub
//	libseal-mirror -addr host:9443 -service git -pub enclave.pub \
//	    -checkpoint mirror.ckpt -max-lag 16777216 -status-every 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"libseal"
	"libseal/internal/pki"
)

func main() {
	addr := flag.String("addr", "", "server replication feed address (libseal-server -mirror-addr)")
	service := flag.String("service", "git", "service whose log to mirror (the log-set name)")
	pubPath := flag.String("pub", "", "path to the enclave's PEM public key (enclave.pub) — the mirror's only trust anchor")
	ckptPath := flag.String("checkpoint", "", "resume checkpoint sidecar (empty = cold-verify on every start)")
	maxLag := flag.Int64("max-lag", 0, "bytes the mirror may fall behind before raising ErrMirrorLagging (0 = unbounded)")
	restartGrace := flag.Duration("restart-grace", 10*time.Second, "how long a restarted stream may run below the verified counter floor before it counts as a rollback")
	statusEvery := flag.Duration("status-every", 30*time.Second, "status line cadence (0 = quiet)")
	flag.Parse()
	if *addr == "" || *pubPath == "" {
		fmt.Fprintln(os.Stderr, "libseal-mirror: -addr and -pub are required")
		flag.Usage()
		os.Exit(2)
	}

	pemData, err := os.ReadFile(*pubPath)
	if err != nil {
		log.Fatalf("read public key: %v", err)
	}
	pub, err := pki.DecodePublicKeyPEM(pemData)
	if err != nil {
		log.Fatalf("parse public key: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, err := libseal.StartMirror(ctx, libseal.MirrorConfig{
		Addr:           *addr,
		Name:           *service,
		Pub:            pub,
		CheckpointPath: *ckptPath,
		MaxLag:         *maxLag,
		RestartGrace:   *restartGrace,
		OnViolation: func(err error) {
			log.Printf("INTEGRITY VIOLATION: %v", err)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("mirroring %q from %s (checkpoint: %s)", *service, *addr, orNone(*ckptPath))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *statusEvery > 0 {
		ticker = time.NewTicker(*statusEvery)
		tick = ticker.C
		defer ticker.Stop()
	}
	for {
		select {
		case <-sig:
			log.Printf("shutdown signal: persisting checkpoint")
			stopCtx, stopCancel := context.WithTimeout(context.Background(), 10*time.Second)
			err := m.Stop(stopCtx)
			stopCancel()
			if err != nil {
				log.Fatalf("stop: %v", err)
			}
			printStatus(m)
			return
		case <-tick:
			printStatus(m)
		case <-m.Done():
			// The loop only exits on its own when a violation latched.
			if err := m.Err(); err != nil {
				printStatus(m)
				log.Fatalf("mirror stopped: %v", err)
			}
			return
		}
	}
}

func printStatus(m *libseal.Mirror) {
	s := m.Status()
	state := "disconnected"
	if s.Connected {
		state = "connected"
	}
	log.Printf("status: %s, %d entries verified across %d shards, %d manifests (epoch %d), lag %d bytes, %d reconnects, %d stream restarts",
		state, s.Entries, s.Shards, s.Manifests, s.Epoch, s.LagBytes, s.Reconnects, s.Restarts)
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
