// Command libseal-verify validates a persisted LibSEAL audit log out of
// band, the way a client would during dispute resolution: it recomputes the
// hash chain, verifies the enclave's ECDSA signature over the chain head and
// counter, and prints the verified entries. A failure means the provider
// tampered with, truncated or rolled back the log — or that the log was not
// produced by the expected enclave.
//
// -log accepts either a single .lseal file or a directory. A directory
// holding a sharded log set (shard files plus the signed epoch-manifest
// sidecar) is verified shard-by-shard in parallel, and the manifests are
// replayed against every shard's verified commit points: a single shard
// rolled back to an earlier signed prefix fails verification even though
// its own chain still checks out.
//
// Verification runs the parallel segmented pipeline: signature records cut
// each log into independently checkable segments fanned out to -workers
// goroutines, entries stream through without being materialised, and
// progress is checkpointed to sidecars so an interrupted run resumes with
// -resume instead of rescanning from byte 0.
//
// With -dump, entries print as their segments verify — before the whole-log
// verdict (counter freshness above all) is known. Dumped output is
// provisional until the final "OK" line; a run that ends in VERIFICATION
// FAILED exits non-zero and everything it printed must be discarded.
//
// Usage:
//
//	libseal-verify -log audit/git.lseal -pubkey enclave.pub [-dump]
//	libseal-verify -log auditdir -workers 8 -progress   # sharded set
//	libseal-verify -log auditdir -resume                # continue after a crash
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"libseal"
	"libseal/internal/pki"
)

func main() {
	logPath := flag.String("log", "", "audit log: a .lseal file or a directory holding a (sharded) log set")
	pubPath := flag.String("pubkey", "", "path to the enclave's PEM public key (optional: skips signature check)")
	dump := flag.Bool("dump", false, "print every verified entry")
	workers := flag.Int("workers", 0, "parallel verification workers (0 = all cores)")
	resume := flag.Bool("resume", false, "resume from checkpoint sidecars where they match the logs")
	progress := flag.Bool("progress", false, "print progress as segments verify")
	ckptPath := flag.String("checkpoint", "", "checkpoint sidecar path (single-file sets only; default <log>.ckpt)")
	noCkpt := flag.Bool("no-checkpoint", false, "do not write checkpoints")
	flag.Parse()
	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "libseal-verify: -log is required")
		flag.Usage()
		os.Exit(2)
	}

	// ResumeAuto loads each shard's own sidecar and silently cold-scans when
	// one is missing or stale, so -resume behaves the same for single files
	// and sharded sets.
	opts := libseal.VerifyStreamOptions{Workers: *workers, ResumeAuto: *resume}
	if *pubPath != "" {
		pemData, err := os.ReadFile(*pubPath)
		if err != nil {
			fatal("read public key: %v", err)
		}
		pub, err := pki.DecodePublicKeyPEM(pemData)
		if err != nil {
			fatal("parse public key: %v", err)
		}
		opts.Pub = pub
	}
	if !*noCkpt {
		// Sharded sets force per-shard sidecar paths; the explicit path only
		// steers single-file verification.
		opts.Checkpoint = &libseal.VerifyCheckpointConfig{
			Path: *ckptPath,
			OnError: func(err error) {
				fmt.Fprintf(os.Stderr, "libseal-verify: checkpoint write: %v\n", err)
			},
		}
	}

	start := time.Now()
	var segs, entries int
	opts.OnSegment = func(s libseal.VerifySegment) error {
		segs++
		entries += len(s.Entries)
		if *dump {
			for _, e := range s.Entries {
				fmt.Printf("#%-6d %-16s", e.Seq, e.Table)
				for _, v := range e.Values {
					fmt.Printf(" %s", v.String())
				}
				fmt.Println()
			}
		}
		if *progress && segs%256 == 0 {
			fmt.Fprintf(os.Stderr, "  ... %d segments, %d entries verified (%.1fs)\n",
				segs, entries, time.Since(start).Seconds())
		}
		return nil
	}

	res, err := libseal.Verify(*logPath, opts)
	if err != nil {
		fatal("VERIFICATION FAILED: %v", err)
	}

	fmt.Printf("OK: %d entries, hash chain intact", res.TotalEntries)
	if opts.Pub != nil {
		fmt.Printf(", enclave signature valid")
	}
	if res.Sharded {
		fmt.Printf(" (%d shards, %d epoch manifests, last epoch %d)",
			len(res.Shards), res.Manifests, res.Epoch)
	}
	if res.Resumed {
		reverified := 0
		for _, sh := range res.Shards {
			reverified += sh.Batches
		}
		fmt.Printf(" (resumed: %d of %d batches re-verified)", reverified, res.TotalBatches)
	}
	fmt.Println()

	if !*dump {
		tables := make([]string, 0, len(res.Tables))
		for t := range res.Tables {
			tables = append(tables, t)
		}
		sort.Strings(tables)
		for _, t := range tables {
			fmt.Printf("  %-20s %d tuples\n", t, res.Tables[t])
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "libseal-verify: "+format+"\n", args...)
	os.Exit(1)
}
