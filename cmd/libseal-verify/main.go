// Command libseal-verify validates a persisted LibSEAL audit log out of
// band, the way a client would during dispute resolution: it recomputes the
// hash chain, verifies the enclave's ECDSA signature over the chain head and
// counter, and prints the verified entries. A failure means the provider
// tampered with, truncated or rolled back the log — or that the log was not
// produced by the expected enclave.
//
// Usage:
//
//	libseal-verify -log audit/git.lseal -pubkey enclave.pub [-dump]
package main

import (
	"flag"
	"fmt"
	"os"

	"libseal"
	"libseal/internal/pki"
)

func main() {
	logPath := flag.String("log", "", "path to the .lseal audit log file")
	pubPath := flag.String("pubkey", "", "path to the enclave's PEM public key (optional: skips signature check)")
	dump := flag.Bool("dump", false, "print every verified entry")
	flag.Parse()
	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "libseal-verify: -log is required")
		flag.Usage()
		os.Exit(2)
	}

	opts := libseal.VerifyOptions{}
	if *pubPath != "" {
		pemData, err := os.ReadFile(*pubPath)
		if err != nil {
			fatal("read public key: %v", err)
		}
		pub, err := pki.DecodePublicKeyPEM(pemData)
		if err != nil {
			fatal("parse public key: %v", err)
		}
		opts.Pub = pub
	}

	entries, err := libseal.VerifyLogFile(*logPath, opts)
	if err != nil {
		fatal("VERIFICATION FAILED: %v", err)
	}
	fmt.Printf("OK: %d entries, hash chain intact", len(entries))
	if opts.Pub != nil {
		fmt.Printf(", enclave signature valid")
	}
	fmt.Println()

	if *dump {
		for _, e := range entries {
			fmt.Printf("#%-6d %-16s", e.Seq, e.Table)
			for _, v := range e.Values {
				fmt.Printf(" %s", v.String())
			}
			fmt.Println()
		}
	} else {
		byTable := map[string]int{}
		for _, e := range entries {
			byTable[e.Table]++
		}
		for table, n := range byTable {
			fmt.Printf("  %-20s %d tuples\n", table, n)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "libseal-verify: "+format+"\n", args...)
	os.Exit(1)
}
