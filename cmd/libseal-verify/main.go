// Command libseal-verify validates a persisted LibSEAL audit log out of
// band, the way a client would during dispute resolution: it recomputes the
// hash chain, verifies the enclave's ECDSA signature over the chain head and
// counter, and prints the verified entries. A failure means the provider
// tampered with, truncated or rolled back the log — or that the log was not
// produced by the expected enclave.
//
// Verification runs the parallel segmented pipeline: signature records cut
// the log into independently checkable segments fanned out to -workers
// goroutines, entries stream through without being materialised, and
// progress is checkpointed to a sidecar so an interrupted run resumes with
// -resume instead of rescanning from byte 0.
//
// With -dump, entries print as their segments verify — before the whole-log
// verdict (counter freshness above all) is known. Dumped output is
// provisional until the final "OK" line; a run that ends in VERIFICATION
// FAILED exits non-zero and everything it printed must be discarded.
//
// Usage:
//
//	libseal-verify -log audit/git.lseal -pubkey enclave.pub [-dump]
//	libseal-verify -log audit/git.lseal -workers 8 -progress
//	libseal-verify -log audit/git.lseal -resume   # continue after a crash
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"libseal"
	"libseal/internal/pki"
)

func main() {
	logPath := flag.String("log", "", "path to the .lseal audit log file")
	pubPath := flag.String("pubkey", "", "path to the enclave's PEM public key (optional: skips signature check)")
	dump := flag.Bool("dump", false, "print every verified entry")
	workers := flag.Int("workers", 0, "parallel verification workers (0 = all cores)")
	resume := flag.Bool("resume", false, "resume from the checkpoint sidecar if it matches the log")
	progress := flag.Bool("progress", false, "print progress as segments verify")
	ckptPath := flag.String("checkpoint", "", "checkpoint sidecar path (default <log>.ckpt)")
	noCkpt := flag.Bool("no-checkpoint", false, "do not write checkpoints")
	flag.Parse()
	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "libseal-verify: -log is required")
		flag.Usage()
		os.Exit(2)
	}
	sidecar := *ckptPath
	if sidecar == "" {
		sidecar = *logPath + ".ckpt"
	}

	opts := libseal.VerifyStreamOptions{Workers: *workers}
	if *pubPath != "" {
		pemData, err := os.ReadFile(*pubPath)
		if err != nil {
			fatal("read public key: %v", err)
		}
		pub, err := pki.DecodePublicKeyPEM(pemData)
		if err != nil {
			fatal("parse public key: %v", err)
		}
		opts.Pub = pub
	}
	if !*noCkpt {
		opts.Checkpoint = &libseal.VerifyCheckpointConfig{
			Path: sidecar,
			OnError: func(err error) {
				fmt.Fprintf(os.Stderr, "libseal-verify: checkpoint write: %v\n", err)
			},
		}
	}
	if *resume {
		ck, err := libseal.LoadVerifyCheckpoint(sidecar)
		if err != nil {
			fmt.Fprintf(os.Stderr, "libseal-verify: no usable checkpoint (%v); cold scan\n", err)
		} else {
			opts.Resume = ck
		}
	}

	start := time.Now()
	var segs, entries int
	opts.OnSegment = func(s libseal.VerifySegment) error {
		segs++
		entries += len(s.Entries)
		if *dump {
			for _, e := range s.Entries {
				fmt.Printf("#%-6d %-16s", e.Seq, e.Table)
				for _, v := range e.Values {
					fmt.Printf(" %s", v.String())
				}
				fmt.Println()
			}
		}
		if *progress && segs%256 == 0 {
			fmt.Fprintf(os.Stderr, "  ... %d segments, %d entries, %d bytes verified (%.1fs)\n",
				segs, entries, s.CommittedBytes, time.Since(start).Seconds())
		}
		return nil
	}

	res, err := libseal.VerifyLogFileStream(*logPath, opts)
	if err != nil {
		if opts.Resume != nil && errors.Is(err, libseal.ErrVerifyCheckpointStale) {
			// The log changed since the checkpoint (trimmed or rotated);
			// re-verify it from scratch.
			fmt.Fprintf(os.Stderr, "libseal-verify: %v; cold scan\n", err)
			opts.Resume = nil
			res, err = libseal.VerifyLogFileStream(*logPath, opts)
		}
		if err != nil {
			fatal("VERIFICATION FAILED: %v", err)
		}
	}

	fmt.Printf("OK: %d entries, hash chain intact", res.TotalEntries)
	if opts.Pub != nil {
		fmt.Printf(", enclave signature valid")
	}
	if res.Resumed {
		fmt.Printf(" (resumed: %d of %d batches re-verified)", res.Batches, res.TotalBatches)
	}
	fmt.Println()

	if !*dump {
		tables := make([]string, 0, len(res.Tables))
		for t := range res.Tables {
			tables = append(tables, t)
		}
		sort.Strings(tables)
		for _, t := range tables {
			fmt.Printf("  %-20s %d tuples\n", t, res.Tables[t])
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "libseal-verify: "+format+"\n", args...)
	os.Exit(1)
}
