// Command quickstart is the smallest end-to-end LibSEAL deployment: a Git
// service audited through the enclave TLS library. It pushes two commits,
// lets the (honest) server advertise them, then makes the server misbehave —
// advertising a rolled-back branch — and shows LibSEAL detecting the
// violation with a non-repudiable audit trail.
package main

import (
	"bufio"
	"fmt"
	"log"
	"strings"

	"libseal"
	"libseal/internal/httpparse"
	"libseal/internal/netsim"
	"libseal/internal/services/apache"
	"libseal/internal/services/gitserver"
	"libseal/internal/testutil"
)

func main() {
	// 1. Launch a (simulated) SGX enclave and open a call bridge.
	platform := libseal.NewPlatform()
	encl, err := platform.Launch(libseal.EnclaveConfig{
		Code: []byte("quickstart-enclave"), MaxThreads: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	bridge, err := libseal.NewBridge(encl, libseal.BridgeConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer bridge.Close()

	// 2. Provision a certificate and build the LibSEAL instance with the
	// Git service-specific module.
	certs, err := testutil.NewCertEnv("git.example")
	if err != nil {
		log.Fatal(err)
	}
	module, err := libseal.ModuleByName("git")
	if err != nil {
		log.Fatal(err)
	}
	seal, err := libseal.Open(bridge,
		libseal.WithModule(module),
		libseal.WithTLS(libseal.TLSConfig{Cert: certs.Cert, Key: certs.Key, Opts: libseal.AllOptimizations()}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer seal.Close()

	// 3. Run a Git service behind LibSEAL: the server links against the
	// enclave TLS library instead of its usual one — no other changes.
	git := gitserver.NewServer()
	network := netsim.NewNetwork()
	listener, err := network.Listen("git.example:443")
	if err != nil {
		log.Fatal(err)
	}
	server, err := apache.New(apache.Config{
		Terminator: seal.TLS().Terminator(),
		Handler:    git.Handler(),
		KeepAlive:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	go server.Serve(listener)
	defer server.Close()

	// 4. A client pushes two commits and fetches.
	raw, err := network.Dial("git.example:443")
	if err != nil {
		log.Fatal(err)
	}
	conn, err := libseal.ConnectTLS(raw, certs.ClientConfig("git.example"))
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	do := func(req *httpparse.Request) *httpparse.Response {
		if _, err := conn.Write(req.Bytes()); err != nil {
			log.Fatal(err)
		}
		rsp, err := httpparse.ReadResponse(br)
		if err != nil {
			log.Fatal(err)
		}
		return rsp
	}

	do(httpparse.NewRequest("POST", "/git/demo/git-receive-pack", []byte("create main c1")))
	do(httpparse.NewRequest("POST", "/git/demo/git-receive-pack", []byte("update main c2")))
	rsp := do(httpparse.NewRequest("GET", "/git/demo/info/refs", nil))
	fmt.Printf("advertisement (honest):\n%s", rsp.Body)

	// The client asks for an invariant check in-band via a request header
	// and reads the result from the response.
	req := httpparse.NewRequest("GET", "/git/demo/info/refs", nil)
	req.Header.Set(libseal.CheckHeader, "git")
	rsp = do(req)
	fmt.Printf("check result: %s\n\n", rsp.Header.Get(libseal.CheckResultHeader))

	// 5. The provider suffers a fault: the branch pointer is rolled back in
	// advertisements. Git's own hash chain cannot reveal this.
	git.InjectRollback("demo", "main", "c1")
	rsp = do(httpparse.NewRequest("GET", "/git/demo/info/refs", nil))
	fmt.Printf("advertisement (rolled back):\n%s", rsp.Body)

	req = httpparse.NewRequest("GET", "/git/demo/info/refs", nil)
	req.Header.Set(libseal.CheckHeader, "git")
	rsp = do(req)
	fmt.Printf("check result: %s\n\n", rsp.Header.Get(libseal.CheckResultHeader))

	// 6. The audit log holds the proof.
	for _, v := range seal.Violations() {
		fmt.Printf("violation of %q:\n", v.Invariant)
		for _, row := range v.Rows.Rows {
			fields := make([]string, len(row))
			for i, val := range row {
				fields[i] = v.Rows.Columns[i] + "=" + val.String()
			}
			fmt.Printf("  %s\n", strings.Join(fields, " "))
		}
	}
}
