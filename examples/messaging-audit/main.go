// Command messaging-audit demonstrates extending LibSEAL to a service the
// paper only motivates (§2.2): an XMPP-style instant messaging service whose
// provider may drop, modify or misdeliver messages. The messaging
// service-specific module — schema, parser and three SQL invariants — is all
// it takes to audit the new service; everything else (enclave TLS, audit
// log, checking) is unchanged.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"libseal"
	"libseal/internal/bench"
	"libseal/internal/httpparse"
	"libseal/internal/services/messaging"
	"libseal/internal/ssm/messagingssm"
)

func main() {
	svc := messaging.NewServer()
	module, err := libseal.ModuleByName("messaging")
	if err != nil {
		log.Fatal(err)
	}
	stack, err := bench.NewCustomStack(bench.StackOptions{Mode: bench.ModeMem},
		module, svc.Handler())
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()
	client := stack.NewClient(true)
	defer client.Close()

	send := func(from, to, body string) {
		b, _ := json.Marshal(messagingssm.SendMsg{From: from, To: to, Body: body})
		rsp, err := client.Do(httpparse.NewRequest("POST", "/messaging/send", b))
		if err != nil || rsp.Status != 200 {
			log.Fatalf("send: %v %v", rsp, err)
		}
	}
	fetch := func(user string) []messagingssm.Delivered {
		b, _ := json.Marshal(messagingssm.InboxMsg{User: user, Since: 0})
		rsp, err := client.Do(httpparse.NewRequest("POST", "/messaging/inbox", b))
		if err != nil || rsp.Status != 200 {
			log.Fatalf("inbox: %v %v", rsp, err)
		}
		var out messagingssm.InboxRsp
		json.Unmarshal(rsp.Body, &out)
		return out.Messages
	}

	// An honest conversation.
	send("alice", "bob", "lunch at noon?")
	send("bob", "alice", "sure — usual place")
	fmt.Printf("bob's inbox: %d message(s)\n", len(fetch("bob")))
	if result, _ := stack.Seal.CheckNow(); result != "ok" {
		log.Fatalf("honest conversation flagged: %s", result)
	}
	fmt.Println("honest conversation: all invariants hold")

	// Violation 1: the provider silently drops a message.
	svc.SetFaults(messaging.Faults{DropEveryNth: 1})
	send("alice", "bob", "actually, make it 1pm")
	fetch("bob")
	result, _ := stack.Seal.CheckNow()
	fmt.Printf("dropped message     -> %s\n", result)
	svc.SetFaults(messaging.Faults{})
	stack.Seal.TrimNow()

	// Violation 2: a message is modified in transit.
	svc.SetFaults(messaging.Faults{CorruptBodies: true})
	send("alice", "bob", "transfer 100 to carol")
	fetch("bob")
	result, _ = stack.Seal.CheckNow()
	fmt.Printf("modified message    -> %s\n", result)
	svc.SetFaults(messaging.Faults{})
	stack.Seal.TrimNow()

	// Violation 3: a private message leaks into eve's inbox.
	send("alice", "bob", "my password is hunter2")
	svc.SetFaults(messaging.Faults{MisdeliverTo: "eve"})
	for _, m := range fetch("eve") {
		fmt.Printf("eve received a message addressed to %q!\n", m.To)
	}
	result, _ = stack.Seal.CheckNow()
	fmt.Printf("misdelivery         -> %s\n", result)

	st := stack.Seal.StatsSnapshot()
	fmt.Printf("\naudit stats: %d pairs, %d tuples, %d violations recorded\n",
		st.Pairs, st.Tuples, st.Violations)
}
