// Command dropbox-audit reproduces the paper's Dropbox case study: clients
// reach the remote file-storage service through a local Squid proxy linked
// against LibSEAL, over a simulated 76 ms WAN. Files are split into 4 MB
// blocks whose hashes form the blocklist — metadata Dropbox itself does not
// integrity-protect. LibSEAL records commit_batch and list messages and
// detects corrupted blocklists, stale metadata and silently lost files.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"libseal/internal/bench"
	"libseal/internal/httpparse"
	"libseal/internal/services/dropbox"
	"libseal/internal/ssm/dropboxssm"
)

func main() {
	stack, err := bench.NewDropboxStack(bench.StackOptions{Mode: bench.ModeMem},
		bench.DropboxWANLatency)
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	// Dropbox traffic is routed through the proxy; certificate
	// verification is disabled on this leg, as in the paper (§6.4).
	client := stack.NewDropboxClient(true)
	defer client.Close()

	commit := func(commits ...dropboxssm.FileCommit) time.Duration {
		body, _ := json.Marshal(dropboxssm.CommitBatchMsg{Account: "user", Host: "laptop", Commits: commits})
		start := time.Now()
		rsp, err := client.Do(httpparse.NewRequest("POST", "/dropbox/commit_batch", body))
		if err != nil || rsp.Status != 200 {
			log.Fatalf("commit_batch: %v %v", rsp, err)
		}
		return time.Since(start)
	}
	list := func() ([]dropboxssm.FileCommit, time.Duration) {
		start := time.Now()
		rsp, err := client.Do(httpparse.NewRequest("GET", "/dropbox/list?account=user&host=laptop", nil))
		if err != nil || rsp.Status != 200 {
			log.Fatalf("list: %v %v", rsp, err)
		}
		var out dropboxssm.ListRsp
		json.Unmarshal(rsp.Body, &out)
		return out.Files, time.Since(start)
	}

	// Upload three files; blocklists are computed from real content.
	report := make([]byte, 6<<20) // spans two 4 MB blocks
	for i := range report {
		report[i] = byte(i)
	}
	d := commit(
		dropboxssm.FileCommit{File: "report.pdf", Blocklist: dropbox.Blocklist(report), Size: int64(len(report))},
		dropboxssm.FileCommit{File: "notes.txt", Blocklist: dropbox.Blocklist([]byte("meeting notes")), Size: 13},
		dropboxssm.FileCommit{File: "old.bak", Blocklist: dropbox.Blocklist([]byte("backup")), Size: 6},
	)
	fmt.Printf("commit_batch over the WAN took %v (76 ms RTT + handshake)\n", d.Round(time.Millisecond))

	commit(dropboxssm.FileCommit{File: "old.bak", Size: -1}) // delete one
	files, d := list()
	fmt.Printf("list returned %d files in %v\n", len(files), d.Round(time.Millisecond))
	if result, _ := stack.Seal.CheckNow(); result != "ok" {
		log.Fatalf("honest service flagged: %s", result)
	}
	fmt.Println("honest service: all invariants hold")

	// Violation 1: metadata corruption — the returned blocklist differs
	// from what the client uploaded.
	stack.Service.InjectBlocklistCorruption("report.pdf")
	list()
	result, _ := stack.Seal.CheckNow()
	fmt.Printf("corrupted blocklist -> %s\n", result)
	stack.Service.ClearFaults()
	stack.Seal.TrimNow()

	// Violation 2: a file silently vanishes from listings.
	stack.Service.InjectFileLoss("notes.txt")
	list()
	result, _ = stack.Seal.CheckNow()
	fmt.Printf("lost file           -> %s\n", result)

	// The violations are non-repudiable: the log rows name the evidence.
	for _, v := range stack.Seal.Violations() {
		for _, row := range v.Rows.Rows {
			fmt.Printf("  evidence [%s]: time=%s file=%s\n", v.Invariant, row[0], row[1])
		}
	}
	st := stack.Seal.StatsSnapshot()
	fmt.Printf("\naudit stats: %d pairs, %d tuples\n", st.Pairs, st.Tuples)
}
