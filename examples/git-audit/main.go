// Command git-audit reproduces the paper's Git case study end to end: an
// Apache reverse proxy linked against LibSEAL fronts a Git backend; a
// synthetic commit history is replayed; the provider then mounts all three
// Git metadata attacks (rollback, teleport, reference deletion) that Git's
// own hash chain cannot reveal; LibSEAL detects each one. The audit log is
// persisted with hash chaining, enclave signatures and ROTE rollback
// protection, and finally verified out-of-band as a client would during
// dispute resolution.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"libseal"
	"libseal/internal/audit"
	"libseal/internal/bench"
	"libseal/internal/httpparse"
	"libseal/internal/services/gitserver"
)

func main() {
	dir, err := os.MkdirTemp("", "git-audit-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Deploy: client -> Apache/LibSEAL reverse proxy -> Git backend, with
	// a persistent audit log protected by a ROTE counter group (n=4, f=1).
	stack, err := bench.NewGitStack(bench.StackOptions{
		Mode:        bench.ModeDisk,
		AuditDir:    dir,
		ROTELatency: 20 * time.Microsecond,
		CheckEvery:  25, // the paper's optimal check/trim interval for Git
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	client := stack.NewClient(true)
	defer client.Close()
	push := func(lines string) {
		rsp, err := client.Do(httpparse.NewRequest("POST", "/git/repo/git-receive-pack", []byte(lines)))
		if err != nil || rsp.Status != 200 {
			log.Fatalf("push failed: %v %v", rsp, err)
		}
	}
	fetch := func() string {
		rsp, err := client.Do(httpparse.NewRequest("GET", "/git/repo/info/refs", nil))
		if err != nil || rsp.Status != 200 {
			log.Fatalf("fetch failed: %v %v", rsp, err)
		}
		return string(rsp.Body)
	}

	// Replay a synthetic commit history (like the paper's replay of
	// commons-validator) interleaved with fetches.
	gen := gitserver.NewHistoryGenerator("repo", 1)
	for i := 0; i < 120; i++ {
		push(gen.PushLines())
		if i%10 == 9 {
			fetch()
		}
	}
	fmt.Printf("replayed 120 pushes; audit log: %d pairs, %d tuples, %d trims\n",
		stack.Seal.StatsSnapshot().Pairs, stack.Seal.StatsSnapshot().Tuples,
		stack.Seal.StatsSnapshot().Trims)
	if result, _ := stack.Seal.CheckNow(); result != "ok" {
		log.Fatalf("honest replay flagged: %s", result)
	}
	fmt.Println("honest history: all invariants hold")

	heads := gen.Heads()
	var anyBranch, otherBranch string
	for b := range heads {
		if anyBranch == "" {
			anyBranch = b
		} else if otherBranch == "" {
			otherBranch = b
		}
	}

	// Attack 1: rollback — advertise an old commit for a branch.
	stack.Backend.InjectRollback("repo", anyBranch, "0000000000000000000000000000000000000000")
	fetch()
	report(stack, "rollback attack on "+anyBranch)
	stack.Backend.ClearFaults()

	// Attack 2: teleport — advertise one branch pointing at another's head.
	stack.Backend.InjectTeleport("repo", anyBranch, heads[otherBranch])
	fetch()
	report(stack, "teleport attack on "+anyBranch)
	stack.Backend.ClearFaults()

	// Attack 3: reference deletion — a branch silently disappears.
	stack.Backend.InjectRefDeletion("repo", otherBranch)
	fetch()
	report(stack, "reference-deletion attack on "+otherBranch)
	stack.Backend.ClearFaults()

	// Dispute resolution: verify the persisted log against the enclave's
	// public key and the counter group, exactly as a client would.
	entries, err := libseal.VerifyLogFile(dir+"/git.lseal", libseal.VerifyOptions{
		Pub:       stack.Enclave.PublicKey(),
		Protector: stack.Group,
		Name:      "git",
	})
	if err != nil {
		log.Fatalf("log verification failed: %v", err)
	}
	fmt.Printf("\npersisted log verified: %d entries, chain + signature + counter OK\n", len(entries))

	// Tampering with the evidence is detected.
	raw, _ := os.ReadFile(dir + "/git.lseal")
	raw[len(raw)/2] ^= 0xFF
	tampered := dir + "/tampered.lseal"
	os.WriteFile(tampered, raw, 0o644)
	if _, err := audit.VerifyFile(tampered, audit.VerifyOptions{Pub: stack.Enclave.PublicKey()}); err == nil {
		log.Fatal("tampered log verified?!")
	} else {
		fmt.Printf("tampered copy rejected: %v\n", err)
	}
}

func report(stack *bench.GitStack, attack string) {
	result, err := stack.Seal.CheckNow()
	if err != nil {
		log.Fatal(err)
	}
	if result == "ok" {
		log.Fatalf("%s went undetected", attack)
	}
	fmt.Printf("%-45s -> %s\n", attack, strings.TrimPrefix(result, "violation:"))
	stack.Seal.TrimNow() // discard the checked advertisements
}
