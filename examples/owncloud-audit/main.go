// Command owncloud-audit reproduces the paper's collaborative-editing case
// study: multiple clients edit a shared document through an ownCloud-style
// service whose server must read and modify content (so client-side
// encryption is impossible). LibSEAL records the update and snapshot traffic
// and detects the three violations the paper targets: lost edits, altered
// edits and stale snapshots.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"libseal/internal/bench"
	"libseal/internal/httpparse"
	"libseal/internal/services/owncloud"
	"libseal/internal/ssm/owncloudssm"
)

type editor struct {
	name   string
	client *bench.Client
	seen   int64
}

func (e *editor) post(path string, body any, out any) {
	b, _ := json.Marshal(body)
	rsp, err := e.client.Do(httpparse.NewRequest("POST", path, b))
	if err != nil || rsp.Status != 200 {
		log.Fatalf("%s %s: %v %v", e.name, path, rsp, err)
	}
	if out != nil {
		if err := json.Unmarshal(rsp.Body, out); err != nil {
			log.Fatal(err)
		}
	}
}

func (e *editor) push(doc string, ops ...string) {
	e.post("/owncloud/push", owncloudssm.PushMsg{Doc: doc, Client: e.name, Ops: ops}, nil)
}

func (e *editor) sync(doc string) []string {
	var out owncloudssm.SyncRsp
	e.post("/owncloud/sync", owncloudssm.SyncMsg{Doc: doc, Client: e.name, Since: e.seen}, &out)
	e.seen = out.Seq
	return out.Ops
}

func main() {
	stack, err := bench.NewOwnCloudStack(bench.StackOptions{Mode: bench.ModeMem}, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer stack.Close()

	alice := &editor{name: "alice", client: stack.NewClient(true)}
	bob := &editor{name: "bob", client: stack.NewClient(true)}
	defer alice.client.Close()
	defer bob.client.Close()

	// A healthy editing session: concurrent edits, relayed faithfully.
	alice.post("/owncloud/join", owncloudssm.JoinMsg{Doc: "design.md", Client: "alice"}, nil)
	bob.post("/owncloud/join", owncloudssm.JoinMsg{Doc: "design.md", Client: "bob"}, nil)
	alice.push("design.md", `ins(0,"# Design")`, `ins(8,"\n")`)
	bob.push("design.md", `ins(9,"Intro.")`)
	got := bob.sync("design.md")
	fmt.Printf("bob synced %d ops\n", len(got))
	alice.post("/owncloud/leave", owncloudssm.LeaveMsg{
		Doc: "design.md", Client: "alice", Snapshot: "# Design\nIntro.", Seq: 3,
	}, nil)
	if result, _ := stack.Seal.CheckNow(); result != "ok" {
		log.Fatalf("healthy session flagged: %s", result)
	}
	fmt.Println("healthy session: all invariants hold")

	// Violation 1: the service silently drops edits while advertising the
	// full head sequence.
	stack.Service.SetFaults(owncloud.Faults{DropEveryNthOp: 2})
	carol := &editor{name: "carol", client: stack.NewClient(true)}
	defer carol.client.Close()
	alice.push("design.md", "op-a", "op-b", "op-c", "op-d")
	carol.sync("design.md")
	result, _ := stack.Seal.CheckNow()
	fmt.Printf("lost edits      -> %s\n", result)
	stack.Service.SetFaults(owncloud.Faults{})
	stack.Seal.TrimNow()

	// Violation 2: relayed edits are altered in flight.
	stack.Service.SetFaults(owncloud.Faults{CorruptOps: true})
	alice.push("design.md", `ins(20,"final paragraph")`)
	dave := &editor{name: "dave", client: stack.NewClient(true), seen: carol.seen}
	defer dave.client.Close()
	dave.sync("design.md")
	result, _ = stack.Seal.CheckNow()
	fmt.Printf("altered edits   -> %s\n", result)
	stack.Service.SetFaults(owncloud.Faults{})
	stack.Seal.TrimNow()

	// Violation 3: a joining client receives an outdated snapshot.
	bob.post("/owncloud/leave", owncloudssm.LeaveMsg{
		Doc: "design.md", Client: "bob", Snapshot: "# Design v2", Seq: dave.seen,
	}, nil)
	stack.Service.SetFaults(owncloud.Faults{ServeStaleSnapshot: true})
	erin := &editor{name: "erin", client: stack.NewClient(true)}
	defer erin.client.Close()
	var join owncloudssm.JoinRsp
	erin.post("/owncloud/join", owncloudssm.JoinMsg{Doc: "design.md", Client: "erin"}, &join)
	fmt.Printf("erin received snapshot %q\n", join.Snapshot)
	result, _ = stack.Seal.CheckNow()
	fmt.Printf("stale snapshot  -> %s\n", result)

	st := stack.Seal.StatsSnapshot()
	fmt.Printf("\naudit stats: %d pairs, %d tuples, %d violations recorded\n",
		st.Pairs, st.Tuples, st.Violations)
}
