package libseal

import (
	"bufio"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"libseal/internal/httpparse"
	"libseal/internal/netsim"
	"libseal/internal/services/apache"
	"libseal/internal/services/gitserver"
	"libseal/internal/sqldb"
	"libseal/internal/testutil"
)

// TestPublicAPIEndToEnd drives the whole system through the re-exported
// public surface only: enclave launch, bridge, LibSEAL construction, a Git
// service behind the enclave TLS library, attack detection, persistent
// logging and out-of-band verification.
func TestPublicAPIEndToEnd(t *testing.T) {
	dir := t.TempDir()

	platform := NewPlatform()
	encl, err := platform.Launch(EnclaveConfig{Code: []byte("public-api-test"), MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := NewBridge(encl, BridgeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	certs, err := testutil.NewCertEnv("svc")
	if err != nil {
		t.Fatal(err)
	}
	group, err := NewCounterGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	var seenViolations []string
	seal, err := New(bridge, Config{
		TLS:              TLSConfig{Cert: certs.Cert, Key: certs.Key, Opts: AllOptimizations()},
		Module:           GitModule(),
		AuditMode:        AuditDisk,
		AuditDir:         dir,
		Protector:        group,
		CheckEvery:       10,
		CheckMinInterval: time.Millisecond,
		OnViolation:      func(name string, _ *sqldb.Result) { seenViolations = append(seenViolations, name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seal.Close()

	git := gitserver.NewServer()
	network := netsim.NewNetwork()
	listener, err := network.Listen("svc:443")
	if err != nil {
		t.Fatal(err)
	}
	server, err := apache.New(apache.Config{
		Terminator: seal.TLS().Terminator(),
		Handler:    git.Handler(),
		KeepAlive:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(listener)
	defer server.Close()

	raw, err := network.Dial("svc:443")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ConnectTLS(raw, certs.ClientConfig("svc"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	do := func(req *httpparse.Request) *httpparse.Response {
		t.Helper()
		if _, err := conn.Write(req.Bytes()); err != nil {
			t.Fatal(err)
		}
		rsp, err := httpparse.ReadResponse(br)
		if err != nil {
			t.Fatal(err)
		}
		return rsp
	}

	do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte("create main c1")))
	do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte("update main c2")))
	git.InjectRollback("x", "main", "c1")
	do(httpparse.NewRequest("GET", "/git/x/info/refs", nil))

	req := httpparse.NewRequest("GET", "/git/x/info/refs", nil)
	req.Header.Set(CheckHeader, "1")
	rsp := do(req)
	if got := rsp.Header.Get(CheckResultHeader); !strings.Contains(got, "git-soundness") {
		t.Fatalf("%s = %q", CheckResultHeader, got)
	}
	if len(seenViolations) == 0 || seenViolations[0] != "git-soundness" {
		t.Fatalf("OnViolation = %v", seenViolations)
	}
	if len(seal.Violations()) == 0 {
		t.Fatal("Violations empty")
	}

	// Out-of-band verification of the persisted evidence.
	conn.Close()
	server.Close()
	seal.Close()
	entries, err := VerifyLogFile(filepath.Join(dir, "git.lseal"), VerifyOptions{
		Pub:       encl.PublicKey(),
		Protector: group,
		Name:      "git",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no verified entries")
	}
}

func TestCostModelExports(t *testing.T) {
	def := DefaultCostModel()
	if def.TransitionCycles != 8400 || def.EPCBytes != 128<<20 {
		t.Fatalf("DefaultCostModel = %+v", def)
	}
	zero := ZeroCostModel()
	if zero.TransitionCycles != 0 {
		t.Fatalf("ZeroCostModel charges transitions: %+v", zero)
	}
	if d := def.TransitionCost(1); d <= 0 {
		t.Fatal("transition cost not positive")
	}
}

func TestModuleConstructors(t *testing.T) {
	for _, m := range []Module{GitModule(), OwnCloudModule(), DropboxModule()} {
		if m.Name() == "" || m.Schema() == "" || len(m.Invariants()) == 0 || len(m.TrimQueries()) == 0 {
			t.Fatalf("module %q incomplete", m.Name())
		}
		for _, inv := range m.Invariants() {
			if inv.Kind != "soundness" && inv.Kind != "completeness" {
				t.Fatalf("%s invariant %s has kind %q", m.Name(), inv.Name, inv.Kind)
			}
		}
	}
}
