package libseal

import (
	"bufio"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"libseal/internal/httpparse"
	"libseal/internal/netsim"
	"libseal/internal/services/apache"
	"libseal/internal/services/gitserver"
	"libseal/internal/sqldb"
	"libseal/internal/testutil"
)

// TestPublicAPIEndToEnd drives the whole system through the re-exported
// public surface only: enclave launch, bridge, LibSEAL construction, a Git
// service behind the enclave TLS library, attack detection, persistent
// logging and out-of-band verification.
func TestPublicAPIEndToEnd(t *testing.T) {
	dir := t.TempDir()

	platform := NewPlatform()
	encl, err := platform.Launch(EnclaveConfig{Code: []byte("public-api-test"), MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := NewBridge(encl, BridgeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	certs, err := testutil.NewCertEnv("svc")
	if err != nil {
		t.Fatal(err)
	}
	group, err := NewCounterGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	var seenViolations []string
	seal, err := New(bridge, Config{
		TLS:              TLSConfig{Cert: certs.Cert, Key: certs.Key, Opts: AllOptimizations()},
		Module:           GitModule(),
		AuditMode:        AuditDisk,
		AuditDir:         dir,
		Protector:        group,
		CheckEvery:       10,
		CheckMinInterval: time.Millisecond,
		OnViolation:      func(name string, _ *sqldb.Result) { seenViolations = append(seenViolations, name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seal.Close()

	git := gitserver.NewServer()
	network := netsim.NewNetwork()
	listener, err := network.Listen("svc:443")
	if err != nil {
		t.Fatal(err)
	}
	server, err := apache.New(apache.Config{
		Terminator: seal.TLS().Terminator(),
		Handler:    git.Handler(),
		KeepAlive:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(listener)
	defer server.Close()

	raw, err := network.Dial("svc:443")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ConnectTLS(raw, certs.ClientConfig("svc"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	do := func(req *httpparse.Request) *httpparse.Response {
		t.Helper()
		if _, err := conn.Write(req.Bytes()); err != nil {
			t.Fatal(err)
		}
		rsp, err := httpparse.ReadResponse(br)
		if err != nil {
			t.Fatal(err)
		}
		return rsp
	}

	do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte("create main c1")))
	do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte("update main c2")))
	git.InjectRollback("x", "main", "c1")
	do(httpparse.NewRequest("GET", "/git/x/info/refs", nil))

	req := httpparse.NewRequest("GET", "/git/x/info/refs", nil)
	req.Header.Set(CheckHeader, "1")
	rsp := do(req)
	if got := rsp.Header.Get(CheckResultHeader); !strings.Contains(got, "git-soundness") {
		t.Fatalf("%s = %q", CheckResultHeader, got)
	}
	if len(seenViolations) == 0 || seenViolations[0] != "git-soundness" {
		t.Fatalf("OnViolation = %v", seenViolations)
	}
	if len(seal.Violations()) == 0 {
		t.Fatal("Violations empty")
	}

	// Out-of-band verification of the persisted evidence.
	conn.Close()
	server.Close()
	seal.Close()
	entries, err := VerifyLogFile(filepath.Join(dir, "git.lseal"), VerifyOptions{
		Pub:       encl.PublicKey(),
		Protector: group,
		Name:      "git",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no verified entries")
	}
}

func TestCostModelExports(t *testing.T) {
	def := DefaultCostModel()
	if def.TransitionCycles != 8400 || def.EPCBytes != 128<<20 {
		t.Fatalf("DefaultCostModel = %+v", def)
	}
	zero := ZeroCostModel()
	if zero.TransitionCycles != 0 {
		t.Fatalf("ZeroCostModel charges transitions: %+v", zero)
	}
	if d := def.TransitionCost(1); d <= 0 {
		t.Fatal("transition cost not positive")
	}
}

func TestModuleConstructors(t *testing.T) {
	for _, m := range []Module{GitModule(), OwnCloudModule(), DropboxModule()} {
		if m.Name() == "" || m.Schema() == "" || len(m.Invariants()) == 0 || len(m.TrimQueries()) == 0 {
			t.Fatalf("module %q incomplete", m.Name())
		}
		for _, inv := range m.Invariants() {
			if inv.Kind != "soundness" && inv.Kind != "completeness" {
				t.Fatalf("%s invariant %s has kind %q", m.Name(), inv.Name, inv.Kind)
			}
		}
	}
}

func TestModuleByName(t *testing.T) {
	names := ModuleNames()
	want := []string{"dropbox", "git", "messaging", "owncloud"}
	if len(names) != len(want) {
		t.Fatalf("ModuleNames = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("ModuleNames = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		m, err := ModuleByName(n)
		if err != nil {
			t.Fatalf("ModuleByName(%q): %v", n, err)
		}
		if m.Name() == "" || m.Schema() == "" {
			t.Fatalf("module %q incomplete", n)
		}
	}
	if _, err := ModuleByName("nope"); !errors.Is(err, ErrUnknownModule) {
		t.Fatalf("unknown module error = %v, want ErrUnknownModule", err)
	}
}

func TestNewCounterGroupWith(t *testing.T) {
	policy := DefaultRetryPolicy()
	policy.Retries = 0
	policy.Timeout = 50 * time.Millisecond
	group, err := NewCounterGroupWith(1, policy)
	if err != nil {
		t.Fatal(err)
	}
	v, err := group.Increment("c")
	if err != nil || v != 1 {
		t.Fatalf("Increment = %d, %v", v, err)
	}
	// The old signature stays a thin wrapper over the default policy.
	legacy, err := NewCounterGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := legacy.Increment("c"); err != nil || v != 1 {
		t.Fatalf("legacy Increment = %d, %v", v, err)
	}
}

func TestMetricsSurface(t *testing.T) {
	ResetMetrics()
	group, err := NewCounterGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	events := 0
	RegisterTrace("test-surface", func(event string, d time.Duration) {
		if event == "rote.increment" {
			mu.Lock()
			events++
			mu.Unlock()
		}
	})
	defer UnregisterTrace("test-surface")
	if _, err := group.Increment("c"); err != nil {
		t.Fatal(err)
	}
	snap := MetricsSnapshot()
	byName := make(map[string]Metric, len(snap))
	for _, m := range snap {
		byName[m.Name] = m
	}
	if m := byName["rote.increments"]; m.Value != 1 {
		t.Fatalf("rote.increments = %+v", m)
	}
	if m := byName["rote.increment.latency"]; m.Value != 1 || m.P50 <= 0 {
		t.Fatalf("rote.increment.latency = %+v", m)
	}
	mu.Lock()
	got := events
	mu.Unlock()
	if got != 1 {
		t.Fatalf("trace events = %d, want 1", got)
	}

	// SetMetricsEnabled(false) freezes the counters.
	SetMetricsEnabled(false)
	if _, err := group.Increment("c"); err != nil {
		t.Fatal(err)
	}
	SetMetricsEnabled(true)
	if m, _ := findMetric("rote.increments"); m.Value != 1 {
		t.Fatalf("rote.increments moved while disabled: %+v", m)
	}
}

func findMetric(name string) (Metric, bool) {
	for _, m := range MetricsSnapshot() {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}
