package libseal

import (
	"context"
	"errors"
	"net"

	"libseal/internal/audit/mirror"
)

// This file is the live-mirroring facade: a server exposes its audit log
// over a replication feed, and any number of followers run a Mirror against
// it, continuously re-verifying the stream with nothing but the enclave's
// public key. The feed is plumbing, not evidence — a compromised server
// controls every byte it sends — so the mirror re-derives integrity exactly
// like the offline verifier (hash chain, batch signatures, manifest replay)
// and judges rollback by continuity: verified state is never walked back.
// See internal/audit/mirror and DESIGN.md §16.

type (
	// Mirror is a follower continuously verifying a live audit log over its
	// replication feed. Build one with StartMirror.
	Mirror = mirror.Mirror
	// MirrorConfig describes a mirror session: where to dial, the log-set
	// name, the enclave public key (the only trust anchor), and the
	// reconnect/lag/checkpoint knobs.
	MirrorConfig = mirror.Config
	// MirrorStatus is a mirror's cheap point-in-time summary.
	MirrorStatus = mirror.Status
	// MirrorFeed is the server-side replication feed over a running audit
	// log. Build one with NewMirrorFeed or ServeAuditFeed.
	MirrorFeed = mirror.Feed
	// MirrorFeedConfig describes the feed: the live log, its files, and the
	// per-subscriber chunking/queueing/backpressure bounds.
	MirrorFeedConfig = mirror.FeedConfig
)

// StartMirror attaches a mirror to a feed and begins continuous
// verification in the background: every streamed batch is re-verified
// (chain, signature, counter continuity, manifest replay) within one batch
// of the server's write. The mirror reconnects with breaker-guarded
// exponential backoff; stop it with Mirror.Stop, which persists a resume
// checkpoint when MirrorConfig.CheckpointPath is set. A detected violation
// latches (Mirror.Err, MirrorConfig.OnViolation) and stops the mirror — its
// attestation is void from that point.
func StartMirror(ctx context.Context, cfg MirrorConfig) (*Mirror, error) {
	return mirror.Start(ctx, cfg)
}

// NewMirrorFeed builds a replication feed over a running audit log and
// installs it as the log's commit listener. Accept subscribers by running
// MirrorFeed.Serve on a listener.
func NewMirrorFeed(cfg MirrorFeedConfig) (*MirrorFeed, error) {
	return mirror.NewFeed(cfg)
}

// ServeAuditFeed exposes a LibSEAL instance's persisted audit log as a
// replication feed on ln, accepting subscribers in the background — the
// one-call server side of live mirroring. The instance must be running with
// WithAuditDisk. Close the returned feed to stop serving.
func ServeAuditFeed(ls *LibSEAL, ln net.Listener) (*MirrorFeed, error) {
	dir, name := ls.AuditLocation()
	if dir == "" {
		return nil, errors.New("libseal: ServeAuditFeed needs a disk-mode audit log (WithAuditDisk)")
	}
	feed, err := mirror.NewFeed(mirror.FeedConfig{Log: ls.Log(), Dir: dir, Name: name})
	if err != nil {
		return nil, err
	}
	go feed.Serve(ln)
	return feed, nil
}
