package libseal

import (
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestErrorTaxonomyConsolidated parses the facade package's source and
// asserts every exported error sentinel is declared in errors.go — the one
// documented block — rather than leaking out of feature files one by one.
func TestErrorTaxonomyConsolidated(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	byFile := map[string][]string{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if id.IsExported() && strings.HasPrefix(id.Name, "Err") {
						byFile[name] = append(byFile[name], id.Name)
					}
				}
			}
		}
	}
	for file, names := range byFile {
		if file != "errors.go" {
			t.Errorf("exported error sentinel(s) %v declared in %s; the taxonomy lives in errors.go", names, file)
		}
	}
	// The documented block must actually cover the taxonomy.
	want := []string{
		"ErrTampered", "ErrBadCounter", "ErrCheckpointStale", "ErrBreakerOpen",
		"ErrAuditOverloaded", "ErrMirrorLagging", "ErrLoggingDisabled", "ErrUnknownModule",
		"ErrVerifyCheckpointStale",
	}
	have := map[string]bool{}
	for _, n := range byFile["errors.go"] {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("errors.go is missing sentinel %s", n)
		}
	}
	if len(byFile["errors.go"]) != len(want) {
		t.Errorf("errors.go declares %v; update this test's inventory when extending the taxonomy", byFile["errors.go"])
	}
}

// TestErrorSentinelIdentity pins the facade sentinels to the internal ones
// they re-export and exercises the errors.Is wrapping guarantee.
func TestErrorSentinelIdentity(t *testing.T) {
	sentinels := map[string]error{
		"ErrTampered":        ErrTampered,
		"ErrBadCounter":      ErrBadCounter,
		"ErrCheckpointStale": ErrCheckpointStale,
		"ErrBreakerOpen":     ErrBreakerOpen,
		"ErrAuditOverloaded": ErrAuditOverloaded,
		"ErrMirrorLagging":   ErrMirrorLagging,
		"ErrLoggingDisabled": ErrLoggingDisabled,
		"ErrUnknownModule":   ErrUnknownModule,
	}
	for name, sentinel := range sentinels {
		if sentinel == nil {
			t.Fatalf("%s is nil", name)
		}
		wrapped := fmt.Errorf("layer two: %w", fmt.Errorf("layer one: %w", sentinel))
		if !errors.Is(wrapped, sentinel) {
			t.Errorf("errors.Is fails through wrapping for %s", name)
		}
	}
	// The deprecated alias must stay the same sentinel, not a lookalike.
	if !errors.Is(ErrVerifyCheckpointStale, ErrCheckpointStale) {
		t.Error("ErrVerifyCheckpointStale diverged from ErrCheckpointStale")
	}
	// Distinct conditions must stay distinguishable.
	if errors.Is(ErrBadCounter, ErrTampered) || errors.Is(ErrTampered, ErrBadCounter) {
		t.Error("ErrBadCounter and ErrTampered must be distinct sentinels")
	}
}

// TestErrorTaxonomyEndToEnd drives one real failure per detectable family
// through the public API and asserts the sentinel surfaces via errors.Is.
func TestErrorTaxonomyEndToEnd(t *testing.T) {
	if _, err := ModuleByName("no-such-service"); !errors.Is(err, ErrUnknownModule) {
		t.Errorf("ModuleByName error %v is not ErrUnknownModule", err)
	}
	// A file that is not a log at all must verify as tampered.
	dir := t.TempDir()
	path := filepath.Join(dir, "bogus.lseal")
	if err := os.WriteFile(path, []byte("not a log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(path, VerifyStreamOptions{}); !errors.Is(err, ErrTampered) {
		t.Errorf("Verify of garbage returned %v, want ErrTampered", err)
	}
}
