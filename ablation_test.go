// Ablation benchmarks for this implementation's own design choices (beyond
// the paper's tables and figures): the correlated-subquery result cache in
// the SQL engine, the cost of sealing the persisted log, and the ROTE
// group's fault-tolerance parameter.
package libseal

import (
	"fmt"
	"testing"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/bench"
	"libseal/internal/rote"
	"libseal/internal/sqldb"
	"libseal/internal/ssm/gitssm"
	"libseal/internal/testutil"
)

// BenchmarkAblation_SubqueryCache measures the Git soundness+completeness
// checks with and without the engine's correlated-subquery result cache
// (the substitute for SQLite's automatic indexes; see
// internal/sqldb/subqcache.go). The cache collapses the O(rows^3) blow-up
// of the paper's nested-MAX queries.
func BenchmarkAblation_SubqueryCache(b *testing.B) {
	build := func() *sqldb.DB {
		filler, err := bench.NewGitFiller(gitssm.New())
		if err != nil {
			b.Fatal(err)
		}
		if err := filler.Fill(150); err != nil {
			b.Fatal(err)
		}
		return filler.DB
	}
	for _, cached := range []bool{true, false} {
		cached := cached
		name := "cached"
		if !cached {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			db := build()
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				for _, q := range []string{gitssm.SoundnessSQL, gitssm.CompletenessSQL} {
					if _, err := sqldb.QueryWithCache(db, q, cached); err != nil {
						b.Fatal(err)
					}
				}
				elapsed = time.Since(start)
			}
			b.ReportMetric(float64(elapsed.Milliseconds()), "ms/check")
		})
	}
}

// BenchmarkAblation_SealedLog measures audit append throughput with and
// without entry sealing (log privacy, §6.3).
func BenchmarkAblation_SealedLog(b *testing.B) {
	for _, sealed := range []bool{false, true} {
		sealed := sealed
		name := "plain"
		if sealed {
			name = "sealed"
		}
		b.Run(name, func(b *testing.B) {
			_, bridge, err := testutil.NewBridge(testutil.BridgeOptions{Cost: benchCost()})
			if err != nil {
				b.Fatal(err)
			}
			defer bridge.Close()
			dir := b.TempDir()
			var log *audit.Log
			if err := bridge.Call(func(env *asyncall.Env) error {
				var err error
				log, err = audit.New(env, audit.Config{
					Name: "abl", Schema: gitssm.New().Schema(),
					Mode: audit.ModeDisk, Dir: dir, Seal: sealed,
				})
				return err
			}); err != nil {
				b.Fatal(err)
			}
			defer log.Close()
			const appends = 100
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				err := bridge.Call(func(env *asyncall.Env) error {
					for j := 0; j < appends; j++ {
						if err := log.Append(env, "updates", j, "r", "main", "c", "update"); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				elapsed = time.Since(start)
			}
			b.ReportMetric(float64(elapsed.Microseconds())/appends, "µs/append")
		})
	}
}

// BenchmarkAblation_ROTEFaultTolerance sweeps the counter group's f: higher
// fault tolerance means more nodes (3f+1) and a larger quorum (2f+1) per
// increment.
func BenchmarkAblation_ROTEFaultTolerance(b *testing.B) {
	for _, f := range []int{0, 1, 2, 3} {
		f := f
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			group, err := rote.NewGroup(f, 0)
			if err != nil {
				b.Fatal(err)
			}
			const increments = 200
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				for j := 0; j < increments; j++ {
					if _, err := group.Increment("bench"); err != nil {
						b.Fatal(err)
					}
				}
				elapsed = time.Since(start)
			}
			b.ReportMetric(float64(elapsed.Microseconds())/increments, "µs/increment")
		})
	}
}
