package libseal

import (
	"sort"
	"strings"
	"testing"
	"time"

	"libseal/internal/bench"
	"libseal/internal/core"
	"libseal/internal/faultinject"
	"libseal/internal/httpparse"
)

// The chaos soak drives the full stack — client -> Apache proxy -> LibSEAL ->
// Git backend — under a scripted fault schedule, then restarts it with
// -recover semantics and asserts the paper's robustness claims: no committed
// audit entry is lost, no integrity violation goes undetected, and the
// request path stays bounded while the counter quorum is unreachable.
//
// The schedule is deterministic from its seed: faults trigger on per-target
// operation counts, and the single sequential client makes those counts
// reproducible (see TestChaosScheduleDeterministic).

const chaosSeed = 42

// chaosAppendWrite returns the first file-write index of audit append k: the
// log magic is write 0 and each append issues four writes (entry header,
// entry payload, signature header, signature payload).
func chaosAppendWrite(k int) int { return 1 + 4*k }

func chaosRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Timeout:     300 * time.Millisecond,
		Retries:     1,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		JitterSeed:  chaosSeed,
	}
}

func chaosScenario() FaultScenario {
	return FaultScenario{Seed: chaosSeed, Rules: []FaultRule{
		// Counter node 0 dies for good after its second operation — within
		// the group's f = 1 budget, so the quorum must absorb it.
		faultinject.CrashNode(0, 2, 1<<30),
		// A latency spike on the proxy-to-backend leg.
		faultinject.DelayLink("git-backend:80", 4, 12, 20*time.Millisecond),
		// The crash: the tenth audit append (write 37) tears mid-record and
		// wedges the log's file handle, the on-disk image a power cut leaves.
		faultinject.TornWrite("git.lseal", chaosAppendWrite(9)),
	}}
}

// runChaosFaultPhase executes run 1 of the soak: nine pushes under the fault
// schedule (including a two-push window with the counter quorum dead), then
// the torn-write crash on push ten. It returns the injector trace and the
// stats at the time of the crash.
func runChaosFaultPhase(t *testing.T, dir string, platform *Platform, group *CounterGroup) ([]string, core.Stats) {
	t.Helper()
	in := chaosScenario().Build()
	policy := chaosRetryPolicy()
	st, err := bench.NewGitStack(bench.StackOptions{
		Mode:          bench.ModeDisk,
		AuditDir:      dir,
		Platform:      platform,
		Group:         group,
		Inject:        in,
		RetryPolicy:   &policy,
		AnchorTimeout: 300 * time.Millisecond,
		DegradedLimit: 4,
		RecoverMaxLag: 1,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Net.SetLinkFault("git-backend:80", in.LinkFault("git-backend:80"))

	client := st.NewClient(true)
	defer client.Close()
	push := func(op, cid string) error {
		rsp, err := client.Do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte(op+" main "+cid)))
		if err != nil {
			return err
		}
		if rsp.Status != 200 {
			t.Fatalf("push %s: status %d", cid, rsp.Status)
		}
		return nil
	}

	// Pushes 1-6 ride out the node-0 crash and the backend latency spike.
	if err := push("create", "c1"); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 6; i++ {
		if err := push("update", "c"+string(rune('0'+i))); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}

	// Kill a second counter node: with node 0 already dead the quorum is
	// unreachable. Appends must keep succeeding in degraded mode, and each
	// request must stay bounded (two 300 ms anchor attempts, not a stall).
	st.Group.Nodes()[1].Fail()
	for i := 7; i <= 8; i++ {
		start := time.Now()
		if err := push("update", "c"+string(rune('0'+i))); err != nil {
			t.Fatalf("degraded push %d: %v", i, err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("degraded push %d blocked for %v", i, elapsed)
		}
	}
	if status := st.Seal.AuditStatus(); !status.Degraded || status.PendingAnchor != 2 {
		t.Fatalf("status under dead quorum = %+v", status)
	}

	// The quorum heals: the next append re-anchors the whole backlog.
	st.Group.Nodes()[1].Recover()
	if err := push("update", "c9"); err != nil {
		t.Fatal(err)
	}
	if status := st.Seal.AuditStatus(); status.Degraded || status.Gaps != 1 {
		t.Fatalf("status after heal = %+v", status)
	}

	// Push ten hits the torn write: the machine "dies" mid-append and the
	// client sees a failure, so the entry was never acknowledged.
	if err := push("update", "cA"); err == nil {
		t.Fatal("push over the torn append reported success")
	}
	stats := st.Seal.StatsSnapshot()
	if stats.Tuples != 9 {
		t.Fatalf("tuples at crash = %d, want 9", stats.Tuples)
	}
	return in.Trace(), stats
}

func TestChaosSoakCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	platform := NewPlatform()
	group, err := NewCounterGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	trace, stats := runChaosFaultPhase(t, dir, platform, group)
	var torn bool
	for _, line := range trace {
		torn = torn || strings.Contains(line, "torn-write")
	}
	if !torn {
		t.Fatalf("trace missing the torn write: %v", trace)
	}

	// Restart: the operator replaced the dead counter node and relaunched on
	// the same platform, recovering the persisted log.
	for _, n := range group.Nodes() {
		n.SetFaultHook(nil)
	}
	policy := chaosRetryPolicy()
	st, err := bench.NewGitStack(bench.StackOptions{
		Mode:            bench.ModeDisk,
		AuditDir:        dir,
		Platform:        platform,
		Group:           group,
		RetryPolicy:     &policy,
		RecoverExisting: true,
		AnchorTimeout:   300 * time.Millisecond,
		DegradedLimit:   4,
		RecoverMaxLag:   1,
	}, 0)
	if err != nil {
		t.Fatalf("recovery restart: %v", err)
	}
	defer st.Close()

	// Claim 1: zero committed entries lost. Every acknowledged append — the
	// degraded ones included — survived the crash; the torn entry, never
	// acknowledged, is gone.
	if got := st.Seal.Log().Seq(); got != uint64(stats.Tuples) {
		t.Fatalf("recovered %d entries, committed %d", got, stats.Tuples)
	}

	// Claim 2: violations stay detectable after recovery. The provider rolls
	// a branch back; the recovered log still holds the update history that
	// convicts it.
	client := st.NewClient(true)
	defer client.Close()
	do := func(req *httpparse.Request) *httpparse.Response {
		t.Helper()
		rsp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return rsp
	}
	do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte("create main r1")))
	do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte("update main r2")))
	st.Backend.InjectRollback("x", "main", "r1")
	do(httpparse.NewRequest("GET", "/git/x/info/refs", nil))
	req := httpparse.NewRequest("GET", "/git/x/info/refs", nil)
	req.Header.Set(CheckHeader, "1")
	rsp := do(req)
	if got := rsp.Header.Get(CheckResultHeader); !strings.Contains(got, "git-soundness") {
		t.Fatalf("rollback after recovery not detected: %s = %q", CheckResultHeader, got)
	}
	if len(st.Seal.Violations()) == 0 {
		t.Fatal("no violation recorded")
	}

	// Claim 3: the surviving evidence passes strict client-side verification
	// — chain, enclave signature and counter freshness, no lag allowance.
	finalSeq := st.Seal.Log().Seq()
	pub := st.Enclave.PublicKey()
	st.Seal.Close()
	entries, err := VerifyLogFile(dir+"/git.lseal", VerifyOptions{Pub: pub, Protector: group, Name: "git"})
	if err != nil {
		t.Fatalf("strict verify of recovered log: %v", err)
	}
	if uint64(len(entries)) != finalSeq {
		t.Fatalf("verified %d entries, log held %d", len(entries), finalSeq)
	}
}

// TestChaosScheduleDeterministic replays the fault phase twice from the same
// seed and asserts both runs fired the same faults and committed the same
// entries. Per-target firing order is deterministic; the global interleaving
// across targets is not (node replies race link writes), so the traces are
// compared as sorted sets.
func TestChaosScheduleDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos determinism soak skipped in -short mode")
	}
	run := func() ([]string, core.Stats) {
		group, err := NewCounterGroup(1)
		if err != nil {
			t.Fatal(err)
		}
		return runChaosFaultPhase(t, t.TempDir(), NewPlatform(), group)
	}
	trace1, stats1 := run()
	trace2, stats2 := run()
	if stats1.Tuples != stats2.Tuples || stats1.Pairs != stats2.Pairs {
		t.Fatalf("stats diverge: %+v vs %+v", stats1, stats2)
	}
	sort.Strings(trace1)
	sort.Strings(trace2)
	if len(trace1) != len(trace2) {
		t.Fatalf("traces diverge in length:\n%v\n%v", trace1, trace2)
	}
	for i := range trace1 {
		if trace1[i] != trace2[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, trace1[i], trace2[i])
		}
	}
}
