package libseal

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"libseal/internal/bench"
	"libseal/internal/core"
	"libseal/internal/faultinject"
	"libseal/internal/httpparse"
	"libseal/internal/telemetry"
	"libseal/internal/testutil"
)

// The chaos soak drives the full stack — client -> Apache proxy -> LibSEAL ->
// Git backend — under a scripted fault schedule, then restarts it with
// -recover semantics and asserts the paper's robustness claims: no committed
// audit entry is lost, no integrity violation goes undetected, and the
// request path stays bounded while the counter quorum is unreachable.
//
// The schedule is deterministic from its seed: faults trigger on per-target
// operation counts, and the single sequential client makes those counts
// reproducible (see TestChaosScheduleDeterministic).

const chaosSeed = 42

// chaosAppendWrite returns the first file-write index of audit append k: the
// log magic is write 0 and each append issues four writes (entry header,
// entry payload, signature header, signature payload).
func chaosAppendWrite(k int) int { return 1 + 4*k }

func chaosRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Timeout:     300 * time.Millisecond,
		Retries:     1,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		JitterSeed:  chaosSeed,
	}
}

func chaosScenario() FaultScenario {
	return FaultScenario{Seed: chaosSeed, Rules: []FaultRule{
		// Counter node 0 dies for good after its second operation — within
		// the group's f = 1 budget, so the quorum must absorb it.
		faultinject.CrashNode(0, 2, 1<<30),
		// A latency spike on the proxy-to-backend leg.
		faultinject.DelayLink("git-backend:80", 4, 12, 20*time.Millisecond),
		// The crash: the tenth audit append (write 37) tears mid-record and
		// wedges the log's file handle, the on-disk image a power cut leaves.
		faultinject.TornWrite("git.lseal", chaosAppendWrite(9)),
	}}
}

// runChaosFaultPhase executes run 1 of the soak: nine pushes under the fault
// schedule (including a two-push window with the counter quorum dead), then
// the torn-write crash on push ten. It returns the injector trace and the
// stats at the time of the crash.
func runChaosFaultPhase(t *testing.T, dir string, platform *Platform, group *CounterGroup) ([]string, core.Stats) {
	t.Helper()
	in := chaosScenario().Build()
	policy := chaosRetryPolicy()
	st, err := bench.NewGitStack(bench.StackOptions{
		Mode:          bench.ModeDisk,
		AuditDir:      dir,
		Platform:      platform,
		Group:         group,
		Inject:        in,
		RetryPolicy:   &policy,
		AnchorTimeout: 300 * time.Millisecond,
		DegradedLimit: 4,
		RecoverMaxLag: 1,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.Net.SetLinkFault("git-backend:80", in.LinkFault("git-backend:80"))

	client := st.NewClient(true)
	defer client.Close()
	push := func(op, cid string) error {
		rsp, err := client.Do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte(op+" main "+cid)))
		if err != nil {
			return err
		}
		if rsp.Status != 200 {
			t.Fatalf("push %s: status %d", cid, rsp.Status)
		}
		return nil
	}

	// Pushes 1-6 ride out the node-0 crash and the backend latency spike.
	if err := push("create", "c1"); err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 6; i++ {
		if err := push("update", "c"+string(rune('0'+i))); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}

	// Kill a second counter node: with node 0 already dead the quorum is
	// unreachable. Appends must keep succeeding in degraded mode, and each
	// request must stay bounded (two 300 ms anchor attempts, not a stall).
	st.Group.Nodes()[1].Fail()
	for i := 7; i <= 8; i++ {
		start := time.Now()
		if err := push("update", "c"+string(rune('0'+i))); err != nil {
			t.Fatalf("degraded push %d: %v", i, err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("degraded push %d blocked for %v", i, elapsed)
		}
	}
	if status := st.Seal.AuditStatus(); !status.Degraded || status.PendingAnchor != 2 {
		t.Fatalf("status under dead quorum = %+v", status)
	}

	// The quorum heals: the next append re-anchors the whole backlog.
	st.Group.Nodes()[1].Recover()
	if err := push("update", "c9"); err != nil {
		t.Fatal(err)
	}
	if status := st.Seal.AuditStatus(); status.Degraded || status.Gaps != 1 {
		t.Fatalf("status after heal = %+v", status)
	}

	// Push ten hits the torn write: the machine "dies" mid-append and the
	// client sees a failure, so the entry was never acknowledged.
	if err := push("update", "cA"); err == nil {
		t.Fatal("push over the torn append reported success")
	}
	stats := st.Seal.StatsSnapshot()
	if stats.Tuples != 9 {
		t.Fatalf("tuples at crash = %d, want 9", stats.Tuples)
	}
	return in.Trace(), stats
}

func TestChaosSoakCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	platform := NewPlatform()
	group, err := NewCounterGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	trace, stats := runChaosFaultPhase(t, dir, platform, group)
	var torn bool
	for _, line := range trace {
		torn = torn || strings.Contains(line, "torn-write")
	}
	if !torn {
		t.Fatalf("trace missing the torn write: %v", trace)
	}

	// Restart: the operator replaced the dead counter node and relaunched on
	// the same platform, recovering the persisted log.
	for _, n := range group.Nodes() {
		n.SetFaultHook(nil)
	}
	policy := chaosRetryPolicy()
	st, err := bench.NewGitStack(bench.StackOptions{
		Mode:            bench.ModeDisk,
		AuditDir:        dir,
		Platform:        platform,
		Group:           group,
		RetryPolicy:     &policy,
		RecoverExisting: true,
		AnchorTimeout:   300 * time.Millisecond,
		DegradedLimit:   4,
		RecoverMaxLag:   1,
	}, 0)
	if err != nil {
		t.Fatalf("recovery restart: %v", err)
	}
	defer st.Close()

	// Claim 1: zero committed entries lost. Every acknowledged append — the
	// degraded ones included — survived the crash; the torn entry, never
	// acknowledged, is gone.
	if got := st.Seal.Log().Seq(); got != uint64(stats.Tuples) {
		t.Fatalf("recovered %d entries, committed %d", got, stats.Tuples)
	}

	// Claim 2: violations stay detectable after recovery. The provider rolls
	// a branch back; the recovered log still holds the update history that
	// convicts it.
	client := st.NewClient(true)
	defer client.Close()
	do := func(req *httpparse.Request) *httpparse.Response {
		t.Helper()
		rsp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return rsp
	}
	do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte("create main r1")))
	do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte("update main r2")))
	st.Backend.InjectRollback("x", "main", "r1")
	do(httpparse.NewRequest("GET", "/git/x/info/refs", nil))
	req := httpparse.NewRequest("GET", "/git/x/info/refs", nil)
	req.Header.Set(CheckHeader, "1")
	rsp := do(req)
	if got := rsp.Header.Get(CheckResultHeader); !strings.Contains(got, "git-soundness") {
		t.Fatalf("rollback after recovery not detected: %s = %q", CheckResultHeader, got)
	}
	if len(st.Seal.Violations()) == 0 {
		t.Fatal("no violation recorded")
	}

	// Claim 3: the surviving evidence passes strict client-side verification
	// — chain, enclave signature and counter freshness, no lag allowance.
	finalSeq := st.Seal.Log().Seq()
	pub := st.Enclave.PublicKey()
	st.Seal.Close()
	entries, err := VerifyLogFile(dir+"/git.lseal", VerifyOptions{Pub: pub, Protector: group, Name: "git"})
	if err != nil {
		t.Fatalf("strict verify of recovered log: %v", err)
	}
	if uint64(len(entries)) != finalSeq {
		t.Fatalf("verified %d entries, log held %d", len(entries), finalSeq)
	}
}

// TestChaosRollingRestartSoak rolls an amnesic restart through every counter
// node, one at a time, while two workers keep pushing. Each restarted node
// refuses service until it re-syncs from a read quorum of its peers, so the
// remaining 3 of n = 4 nodes carry the increments, no adopted value regresses
// below what was committed before the restart, and the final log passes
// strict verification with counter freshness.
func TestChaosRollingRestartSoak(t *testing.T) {
	dir := t.TempDir()
	platform := NewPlatform()
	group, err := NewCounterGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	policy := chaosRetryPolicy()
	st, err := bench.NewGitStack(bench.StackOptions{
		Mode:          bench.ModeDisk,
		AuditDir:      dir,
		Platform:      platform,
		Group:         group,
		RetryPolicy:   &policy,
		AnchorTimeout: time.Second,
		AuditBatchMax: 4,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	setup := st.NewClient(true)
	if rsp, err := setup.Do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte("create main c0"))); err != nil || rsp.Status != 200 {
		t.Fatalf("create push: %v (rsp %+v)", err, rsp)
	}
	setup.Close()
	var pushes atomic.Int64
	pushes.Add(1)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		client := st.NewClient(true)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer client.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cid := fmt.Sprintf("c%d-%d", w, i)
				rsp, err := client.Do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte("update main "+cid)))
				if err != nil {
					t.Errorf("push %s during rolling restart: %v", cid, err)
					return
				}
				if rsp.Status != 200 {
					t.Errorf("push %s: status %d", cid, rsp.Status)
					return
				}
				pushes.Add(1)
			}
		}()
	}

	for id, n := range group.Nodes() {
		before, err := group.Read("git")
		if err != nil {
			t.Errorf("read before restarting node %d: %v", id, err)
			break
		}
		n.RestartAmnesiac()
		// Let the workers hammer the depleted group for a moment: the
		// amnesic node must refuse to serve, not hand out stale acks.
		time.Sleep(20 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		for {
			if err = n.Resync(ctx); err == nil {
				break
			}
			if ctx.Err() != nil {
				t.Errorf("node %d never re-synced: %v", id, err)
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		cancel()
		if !n.Synced() {
			break
		}
		if got := n.Value("git"); got < before {
			t.Errorf("node %d re-synced to %d, below the committed %d", id, got, before)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	finalSeq := st.Seal.Log().Seq()
	if finalSeq != uint64(pushes.Load()) {
		t.Fatalf("log holds %d entries, %d pushes acknowledged", finalSeq, pushes.Load())
	}
	pub := st.Enclave.PublicKey()
	st.Seal.Close()
	entries, err := VerifyLogFile(dir+"/git.lseal", VerifyOptions{Pub: pub, Protector: group, Name: "git"})
	if err != nil {
		t.Fatalf("strict verify after rolling restarts: %v", err)
	}
	if uint64(len(entries)) != finalSeq {
		t.Fatalf("verified %d entries, log held %d", len(entries), finalSeq)
	}
}

// TestChaosBreakerLifecycle walks the counter circuit breaker through a full
// open -> half-open -> closed cycle under live traffic. With the quorum dead,
// each degraded push burns its anchor timeout until the failure streak trips
// the breaker; after that, pushes shed the counter attempt immediately. Once
// the quorum heals and the cooldown passes, the next push is the half-open
// probe that re-closes the breaker and re-anchors the backlog.
func TestChaosBreakerLifecycle(t *testing.T) {
	dir := t.TempDir()
	group, err := NewCounterGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	policy := RetryPolicy{
		Timeout:     250 * time.Millisecond,
		Retries:     2,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
		JitterSeed:  chaosSeed,
	}
	// The cooldown runs on an injected clock: the test advances it past the
	// cooldown instead of sleeping, so expiry is exact rather than raced
	// against the scheduler. The breaker reads the clock from push
	// goroutines, hence the mutex.
	var clockMu sync.Mutex
	now := time.Now()
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}
	st, err := bench.NewGitStack(bench.StackOptions{
		Mode:          bench.ModeDisk,
		AuditDir:      dir,
		Platform:      NewPlatform(),
		Group:         group,
		RetryPolicy:   &policy,
		AnchorTimeout: 400 * time.Millisecond,
		DegradedLimit: 16,
		Breaker:       &BreakerConfig{Threshold: 2, Cooldown: 300 * time.Millisecond, Now: clock},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	client := st.NewClient(true)
	defer client.Close()
	push := func(op, cid string) time.Duration {
		t.Helper()
		start := time.Now()
		rsp, err := client.Do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte(op+" main "+cid)))
		if err != nil {
			t.Fatalf("push %s: %v", cid, err)
		}
		if rsp.Status != 200 {
			t.Fatalf("push %s: status %d", cid, rsp.Status)
		}
		return time.Since(start)
	}

	push("create", "c1")
	if s := st.Breaker.State(); s != BreakerClosed {
		t.Fatalf("breaker after healthy push: %s", s)
	}

	// Kill the quorum. The next two pushes still succeed — degraded — but
	// each eats the 400 ms anchor timeout, and their failure streak trips
	// the breaker.
	st.Group.Nodes()[0].Fail()
	st.Group.Nodes()[1].Fail()
	push("update", "c2")
	push("update", "c3")
	if s := st.Breaker.State(); s != BreakerOpen {
		t.Fatalf("breaker after %d failed anchors: %s, want open", 2, s)
	}

	// Open breaker: the counter attempt is shed on the spot, so the push is
	// degraded AND fast — well under the anchor timeout it no longer pays.
	short0, _ := telemetry.Get("rote.breaker.short_circuits")
	if d := push("update", "c4"); d >= 350*time.Millisecond {
		t.Fatalf("short-circuited push took %v, want well under the 400ms anchor timeout", d)
	}
	if short1, _ := telemetry.Get("rote.breaker.short_circuits"); short1.Value <= short0.Value {
		t.Fatalf("short-circuit count did not advance: %d -> %d", short0.Value, short1.Value)
	}
	if status := st.Seal.AuditStatus(); !status.Degraded || status.PendingAnchor != 3 {
		t.Fatalf("status with breaker open = %+v", status)
	}

	// The quorum heals and the cooldown passes: the next push carries the
	// half-open probe, which succeeds, closes the breaker and re-anchors
	// the whole backlog.
	st.Group.Nodes()[0].Recover()
	st.Group.Nodes()[1].Recover()
	advance(300 * time.Millisecond)
	push("update", "c5")
	if s := st.Breaker.State(); s != BreakerClosed {
		t.Fatalf("breaker after probe: %s, want closed", s)
	}
	if status := st.Seal.AuditStatus(); status.Degraded || status.Gaps != 1 {
		t.Fatalf("status after heal = %+v", status)
	}
	if got := st.Seal.Log().Seq(); got != 5 {
		t.Fatalf("seq = %d, want 5", got)
	}
}

// TestChaosOverloadShedding stalls audit-log disk writes while eight clients
// push at once against a two-entry staging budget. Admission control must
// shed the overflow with ErrOverloaded instead of queueing without bound, and
// every acknowledged push — and only those — must reach the verified log.
func TestChaosOverloadShedding(t *testing.T) {
	dir := t.TempDir()
	group, err := NewCounterGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	in := FaultScenario{Seed: chaosSeed, Rules: []FaultRule{
		// Every log write from the first one on crawls: the group-commit
		// pipeline stays full while the burst arrives.
		faultinject.StallWrites("git.lseal", 1, 1<<30, 300*time.Millisecond),
	}}.Build()
	policy := chaosRetryPolicy()
	st, err := bench.NewGitStack(bench.StackOptions{
		Mode:          bench.ModeDisk,
		AuditDir:      dir,
		Platform:      NewPlatform(),
		Group:         group,
		Inject:        in,
		RetryPolicy:   &policy,
		AnchorTimeout: time.Second,
		AuditBatchMax: 2,
		MaxStaged:     2,
		AdmitTimeout:  30 * time.Millisecond,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	shed0, _ := telemetry.Get("audit.admission.shed")
	const burst = 8
	var ok, failed atomic.Int64
	clients := make([]*bench.Client, burst)
	for i := range clients {
		clients[i] = st.NewClient(true)
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i, client := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer client.Close()
			<-start
			rsp, err := client.Do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte(fmt.Sprintf("create b%d x%d", i, i))))
			if err == nil && rsp.Status == 200 {
				ok.Add(1)
			} else {
				failed.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	shed1, _ := telemetry.Get("audit.admission.shed")
	if shed1.Value <= shed0.Value {
		t.Fatalf("no appends shed under a stalled disk (shed %d -> %d, ok %d, failed %d)",
			shed0.Value, shed1.Value, ok.Load(), failed.Load())
	}
	if failed.Load() == 0 {
		t.Fatal("all pushes succeeded against a full staging budget")
	}
	if got := st.Seal.Log().Seq(); got != uint64(ok.Load()) {
		t.Fatalf("log holds %d entries, %d pushes acknowledged", got, ok.Load())
	}

	// Shed entries must be invisible to the verifier: the surviving chain
	// holds exactly the acknowledged pushes.
	pub := st.Enclave.PublicKey()
	st.Seal.Close()
	entries, err := VerifyLogFile(dir+"/git.lseal", VerifyOptions{Pub: pub, Protector: group, Name: "git"})
	if err != nil {
		t.Fatalf("strict verify after shedding: %v", err)
	}
	if uint64(len(entries)) != uint64(ok.Load()) {
		t.Fatalf("verified %d entries, %d pushes acknowledged", len(entries), ok.Load())
	}
}

// TestChaosScheduleDeterministic replays the fault phase twice from the same
// seed and asserts both runs fired the same faults and committed the same
// entries. Per-target firing order is deterministic; the global interleaving
// across targets is not (node replies race link writes), so the traces are
// compared as sorted sets.
func TestChaosScheduleDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos determinism soak skipped in -short mode")
	}
	run := func() ([]string, core.Stats) {
		group, err := NewCounterGroup(1)
		if err != nil {
			t.Fatal(err)
		}
		return runChaosFaultPhase(t, t.TempDir(), NewPlatform(), group)
	}
	trace1, stats1 := run()
	trace2, stats2 := run()
	if stats1.Tuples != stats2.Tuples || stats1.Pairs != stats2.Pairs {
		t.Fatalf("stats diverge: %+v vs %+v", stats1, stats2)
	}
	sort.Strings(trace1)
	sort.Strings(trace2)
	if len(trace1) != len(trace2) {
		t.Fatalf("traces diverge in length:\n%v\n%v", trace1, trace2)
	}
	for i := range trace1 {
		if trace1[i] != trace2[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, trace1[i], trace2[i])
		}
	}
}

// TestChaosMirrorLinkDrops soaks the replication feed under repeated link
// failures: a live mirror follows a server while workloads land, and between
// rounds every feed connection is severed server-side. The mirror must
// reconnect through its backoff/breaker dialer, resume from its verified
// prefix (checkpoint), and finish with zero violations and full agreement
// with the offline verifier. This is the "untrusted plumbing" half of the
// mirror's threat model: a flaky (or adversarial) link may slow the mirror
// down but must never corrupt its verdict.
func TestChaosMirrorLinkDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("mirror link-drop soak skipped in -short mode")
	}
	certs, err := testutil.NewCertEnv("svc")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	seal, feed, addr, group := openMirroredServer(t, dir, certs)
	defer feed.Close()
	defer seal.Close()

	violations := make(chan error, 8)
	m, err := StartMirror(context.Background(), MirrorConfig{
		Addr:            addr,
		Name:            "git",
		Pub:             seal.Bridge().Enclave().PublicKey(),
		CheckpointPath:  filepath.Join(t.TempDir(), "mirror.ckpt"),
		CheckpointEvery: time.Millisecond,
		BackoffMin:      5 * time.Millisecond,
		BackoffMax:      100 * time.Millisecond,
		RestartGrace:    time.Second,
		OnViolation:     func(err error) { violations <- err },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Stop(context.Background())

	const rounds = 5
	for round := 0; round < rounds; round++ {
		driveGitWorkload(t, seal, certs)
		s := waitMirrorSynced(t, m, seal)
		// Sever every feed connection server-side — the mirror is fully
		// synced and attached, so the drop provably kills its session — then
		// hold until it has re-established through backoff before the next
		// round piles on.
		feed.DisconnectAll()
		deadline := time.Now().Add(15 * time.Second)
		for {
			if st := m.Status(); st.Reconnects > s.Reconnects && st.Connected {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("mirror never re-established after drop %d: %+v", round, m.Status())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	s := waitMirrorSynced(t, m, seal)
	if s.Reconnects < rounds {
		t.Fatalf("mirror reconnected %d times across %d link drops", s.Reconnects, rounds)
	}
	select {
	case verr := <-violations:
		t.Fatalf("link drops produced a violation: %v", verr)
	default:
	}
	if err := m.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Offline ground truth: the mirror's live verdict must match a cold
	// verification of the very same files.
	if err := seal.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyContext(context.Background(), dir, VerifyStreamOptions{
		VerifyOptions: VerifyOptions{Pub: seal.Bridge().Enclave().PublicKey(), Protector: group, Name: "git"},
	})
	if err != nil {
		t.Fatalf("offline Verify after link-drop soak: %v", err)
	}
	if rep.TotalEntries != s.Entries {
		t.Fatalf("offline verifier sees %d entries, mirror verified %d", rep.TotalEntries, s.Entries)
	}
}
