// Benchmarks regenerating every table and figure of the LibSEAL paper's
// evaluation (§6). Each benchmark measures a real deployment of the
// simulated stack under the calibrated SGX cost model; reported metrics are
// genuine wall-clock measurements, not replayed numbers. Absolute values
// depend on the host (the paper used a 4-core Xeon E3-1280 v5; see
// EXPERIMENTS.md for the paper-vs-measured comparison); the relative shapes
// are the reproduction target.
//
// Run all:   go test -bench=. -benchmem
// Run one:   go test -bench=BenchmarkFig5a -benchtime=1x
package libseal

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"libseal/internal/asyncall"
	"libseal/internal/audit"
	"libseal/internal/bench"
	"libseal/internal/enclave"
	"libseal/internal/httpparse"
	"libseal/internal/rote"
	"libseal/internal/ssm/dropboxssm"
	"libseal/internal/ssm/owncloudssm"
	"libseal/internal/testutil"
	"libseal/internal/tlsterm"
)

// benchCost is the SGX cost model used by all benchmarks.
func benchCost() CostModel { return DefaultCostModel() }

// report attaches the standard metrics to a benchmark.
func report(b *testing.B, res bench.Result) {
	b.Helper()
	b.ReportMetric(res.Throughput, "req/s")
	b.ReportMetric(float64(res.Latency.Mean.Microseconds()), "µs-mean")
	b.ReportMetric(float64(res.Latency.P50.Microseconds()), "µs-p50")
	if res.Errors > 0 {
		b.Fatalf("%d request errors", res.Errors)
	}
}

// gitBackendCost models the Git backend's per-request pack/object work.
const gitBackendCost = 2 * time.Millisecond

// phpEngineCost models ownCloud's PHP engine, the bottleneck of §6.4.
const phpEngineCost = 3 * time.Millisecond

// --- Figure 5a: Git throughput and latency -------------------------------

// BenchmarkFig5a_Git measures the Git service (Apache reverse proxy + Git
// backend) under the four configurations of Fig. 5a: native, enclave TLS
// only, in-memory logging, and persistent logging with ROTE.
func BenchmarkFig5a_Git(b *testing.B) {
	for _, mode := range []bench.SealMode{bench.ModeNative, bench.ModeProcess, bench.ModeMem, bench.ModeDisk} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			st, err := bench.NewGitStack(bench.StackOptions{
				Mode: mode, Cost: benchCost(), CheckEvery: 25,
			}, gitBackendCost)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			var res bench.Result
			for i := 0; i < b.N; i++ {
				res = runGitLoad(b, st, 4, 160)
			}
			report(b, res)
		})
	}
}

func runGitLoad(b *testing.B, st *bench.GitStack, clients, requests int) bench.Result {
	b.Helper()
	res, err := bench.Load{
		Clients:    clients,
		Requests:   requests,
		Warmup:     clients * 2,
		MakeClient: func(int) *bench.Client { return st.NewClient(true) },
		MakeRequest: func(worker, seq int) *httpparse.Request {
			repo := fmt.Sprintf("repo%d", worker)
			if seq%10 == 9 {
				return httpparse.NewRequest("GET", "/git/"+repo+"/info/refs", nil)
			}
			body := fmt.Sprintf("update main c%d", seq)
			return httpparse.NewRequest("POST", "/git/"+repo+"/git-receive-pack", []byte(body))
		},
		Validate: status200,
	}.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func status200(rsp *httpparse.Response) error {
	if rsp.Status != 200 {
		return fmt.Errorf("status %d", rsp.Status)
	}
	return nil
}

// --- Figure 5b: ownCloud throughput and latency --------------------------

// BenchmarkFig5b_OwnCloud measures the collaborative editing service under
// native, in-memory and persistent logging. The PHP engine dominates, so
// logging to disk adds little (the paper's observation).
func BenchmarkFig5b_OwnCloud(b *testing.B) {
	for _, mode := range []bench.SealMode{bench.ModeNative, bench.ModeMem, bench.ModeDisk} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			st, err := bench.NewOwnCloudStack(bench.StackOptions{
				Mode: mode, Cost: benchCost(), CheckEvery: 75,
			}, phpEngineCost)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			var res bench.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = bench.Load{
					Clients:    4,
					Requests:   80,
					Warmup:     8,
					MakeClient: func(int) *bench.Client { return st.NewClient(true) },
					MakeRequest: func(worker, seq int) *httpparse.Request {
						doc := fmt.Sprintf("doc%d", worker)
						client := fmt.Sprintf("client%d", worker)
						if seq%4 == 3 {
							// Paragraph-sized edit.
							body, _ := json.Marshal(owncloudssm.PushMsg{Doc: doc, Client: client,
								Ops: []string{fmt.Sprintf("ins(%d,%q)", seq, paragraph)}})
							return httpparse.NewRequest("POST", "/owncloud/push", body)
						}
						// Single-character edit.
						body, _ := json.Marshal(owncloudssm.PushMsg{Doc: doc, Client: client,
							Ops: []string{fmt.Sprintf("ins(%d,'x')", seq)}})
						return httpparse.NewRequest("POST", "/owncloud/push", body)
					},
					Validate: status200,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, res)
		})
	}
}

const paragraph = "Lorem ipsum dolor sit amet, consectetur adipiscing elit, sed do eiusmod tempor incididunt ut labore."

// --- Figure 5c: Dropbox latency ------------------------------------------

// BenchmarkFig5c_Dropbox measures commit_batch and list latency through the
// Squid/LibSEAL proxy over the simulated 76 ms WAN. The WAN dominates, so
// all configurations are close (the paper's observation).
func BenchmarkFig5c_Dropbox(b *testing.B) {
	for _, mode := range []bench.SealMode{bench.ModeNative, bench.ModeMem, bench.ModeDisk} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			st, err := bench.NewDropboxStack(bench.StackOptions{
				Mode: mode, Cost: benchCost(), CheckEvery: 100,
			}, bench.DropboxWANLatency)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			client := st.NewDropboxClient(true)
			defer client.Close()
			// Warm up the proxy connection and upstream handshake.
			seedDropbox(b, client, 0)

			b.Run("commit_batch", func(b *testing.B) {
				var mean time.Duration
				for i := 0; i < b.N; i++ {
					start := time.Now()
					seedDropbox(b, client, i+1)
					mean = time.Since(start)
				}
				b.ReportMetric(float64(mean.Milliseconds()), "ms-latency")
			})
			b.Run("list", func(b *testing.B) {
				var mean time.Duration
				for i := 0; i < b.N; i++ {
					start := time.Now()
					rsp, err := client.Do(httpparse.NewRequest("GET", "/dropbox/list?account=u&host=h", nil))
					if err != nil || rsp.Status != 200 {
						b.Fatalf("list: %v %v", rsp, err)
					}
					mean = time.Since(start)
				}
				b.ReportMetric(float64(mean.Milliseconds()), "ms-latency")
			})
		})
	}
}

func seedDropbox(b *testing.B, client *bench.Client, i int) {
	b.Helper()
	body, _ := json.Marshal(dropboxssm.CommitBatchMsg{
		Account: "u", Host: "h",
		Commits: []dropboxssm.FileCommit{{
			File:      fmt.Sprintf("f%d.dat", i%50),
			Blocklist: fmt.Sprintf("%064d", i),
			Size:      4096,
		}},
	})
	rsp, err := client.Do(httpparse.NewRequest("POST", "/dropbox/commit_batch", body))
	if err != nil || rsp.Status != 200 {
		b.Fatalf("commit_batch: %v %v", rsp, err)
	}
}

// --- Figure 6: invariant checking and trimming cost ----------------------

// BenchmarkFig6_CheckTrim measures the combined invariant-check and trim
// time, normalised by the check interval, for each service. The paper finds
// a cost-minimising interval per service (25/75/100 requests): short
// intervals pay the fixed check cost too often, long intervals let the
// super-linear query cost grow.
func BenchmarkFig6_CheckTrim(b *testing.B) {
	services := []struct {
		name string
		mk   func() (*bench.LogFiller, error)
	}{
		{"git", func() (*bench.LogFiller, error) { return bench.NewGitFiller(GitModule()) }},
		{"owncloud", func() (*bench.LogFiller, error) { return bench.NewOwnCloudFiller(OwnCloudModule()) }},
		{"dropbox", func() (*bench.LogFiller, error) { return bench.NewDropboxFiller(DropboxModule()) }},
	}
	for _, svc := range services {
		svc := svc
		for _, interval := range []int{25, 50, 75, 100, 150, 225, 300} {
			interval := interval
			b.Run(fmt.Sprintf("%s/interval=%d", svc.name, interval), func(b *testing.B) {
				var perReq float64
				for i := 0; i < b.N; i++ {
					filler, err := svc.mk()
					if err != nil {
						b.Fatal(err)
					}
					// Attach a persistent, rollback-protected audit log so
					// each check+trim pays its full fixed cost (enclave
					// crossings, log rewrite, counter, re-sign), the left
					// arm of the paper's U-shaped curves.
					_, bridge, err := testutil.NewBridge(testutil.BridgeOptions{Cost: benchCost()})
					if err != nil {
						b.Fatal(err)
					}
					group, err := rote.NewGroup(1, 30*time.Microsecond)
					if err != nil {
						b.Fatal(err)
					}
					dir := b.TempDir()
					if err := filler.Attach(bridge, audit.Config{
						Mode: audit.ModeDisk, Dir: dir, Protector: group,
					}); err != nil {
						b.Fatal(err)
					}
					// Steady state: several check/trim rounds; measure the
					// later ones.
					var total time.Duration
					rounds := 0
					for r := 0; r < 4; r++ {
						if err := filler.Fill(interval); err != nil {
							b.Fatal(err)
						}
						d, err := filler.CheckTrim()
						if err != nil {
							b.Fatal(err)
						}
						if r > 0 { // skip the cold first round
							total += d
							rounds++
						}
					}
					bridge.Close()
					perReq = float64(total.Microseconds()) / float64(rounds*interval)
				}
				b.ReportMetric(perReq, "µs/req-normalized")
			})
		}
	}
}

// --- Figure 7a: Apache enclave-TLS overhead vs content size --------------

// BenchmarkFig7a_Apache measures Apache throughput with non-persistent
// connections (every request pays a handshake) for growing content sizes,
// native vs LibSEAL without auditing. Overhead concentrates in the
// handshake, so it shrinks as transfer time grows (§6.6).
func BenchmarkFig7a_Apache(b *testing.B) {
	sizes := []struct {
		name string
		n    int
	}{
		{"0B", 0}, {"1KB", 1 << 10}, {"10KB", 10 << 10},
		{"64KB", 64 << 10}, {"512KB", 512 << 10}, {"1MB", 1 << 20}, {"10MB", 10 << 20},
	}
	for _, mode := range []bench.SealMode{bench.ModeNative, bench.ModeProcess} {
		mode := mode
		for _, size := range sizes {
			size := size
			requests := 120
			if size.n >= 512<<10 {
				requests = 24
			}
			b.Run(fmt.Sprintf("%s/size=%s", mode, size.name), func(b *testing.B) {
				st, err := bench.NewStaticStack(bench.StackOptions{
					Mode: mode, Cost: benchCost(), CallMode: asyncall.ModeAsync,
				}, size.n, false)
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				var res bench.Result
				for i := 0; i < b.N; i++ {
					var err error
					res, err = bench.Load{
						Clients:     4,
						Requests:    requests,
						Warmup:      4,
						MakeClient:  func(int) *bench.Client { return st.NewClient(false) },
						MakeRequest: func(_, _ int) *httpparse.Request { return httpparse.NewRequest("GET", "/c", nil) },
						Validate:    status200,
					}.Run()
					if err != nil {
						b.Fatal(err)
					}
				}
				report(b, res)
				b.SetBytes(int64(size.n))
			})
		}
	}
}

// --- Figure 7b: Squid enclave-TLS overhead -------------------------------

// BenchmarkFig7b_Squid measures the proxy with two TLS hops at 1 KB content,
// native vs LibSEAL: double handshakes double the relative overhead (§6.6).
func BenchmarkFig7b_Squid(b *testing.B) {
	for _, mode := range []bench.SealMode{bench.ModeNative, bench.ModeProcess} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			st, err := bench.NewSquidStack(bench.StackOptions{
				Mode: mode, Cost: benchCost(), CallMode: asyncall.ModeAsync,
			}, 1<<10)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			var res bench.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = bench.Load{
					Clients:  4,
					Requests: 80,
					Warmup:   4,
					MakeClient: func(int) *bench.Client {
						return bench.NewClient(st.Dial, st.ClientConfig(), false)
					},
					MakeRequest: func(_, _ int) *httpparse.Request { return httpparse.NewRequest("GET", "/c", nil) },
					Validate:    status200,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, res)
		})
	}
}

// --- Figure 7c: multi-core scalability ------------------------------------

// BenchmarkFig7c_Scalability sweeps GOMAXPROCS 1..4 for Apache and Squid
// with LibSEAL. On the paper's 4-core machine throughput scales linearly;
// on hosts with fewer physical cores the curve flattens at the core count
// (see EXPERIMENTS.md).
func BenchmarkFig7c_Scalability(b *testing.B) {
	maxCores := 4
	for _, stack := range []string{"apache", "squid"} {
		stack := stack
		for cores := 1; cores <= maxCores; cores++ {
			cores := cores
			b.Run(fmt.Sprintf("%s/cores=%d", stack, cores), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(cores)
				defer runtime.GOMAXPROCS(prev)
				opts := bench.StackOptions{Mode: bench.ModeProcess, Cost: benchCost(), CallMode: asyncall.ModeAsync}
				var res bench.Result
				run := func(dial func() (*bench.Client, error)) {
					for i := 0; i < b.N; i++ {
						var err error
						res, err = bench.Load{
							Clients:  4,
							Requests: 60,
							Warmup:   4,
							MakeClient: func(int) *bench.Client {
								c, err := dial()
								if err != nil {
									b.Fatal(err)
								}
								return c
							},
							MakeRequest: func(_, _ int) *httpparse.Request { return httpparse.NewRequest("GET", "/c", nil) },
							Validate:    status200,
						}.Run()
						if err != nil {
							b.Fatal(err)
						}
					}
				}
				if stack == "apache" {
					st, err := bench.NewStaticStack(opts, 1<<10, false)
					if err != nil {
						b.Fatal(err)
					}
					defer st.Close()
					run(func() (*bench.Client, error) { return st.NewClient(false), nil })
				} else {
					st, err := bench.NewSquidStack(opts, 1<<10)
					if err != nil {
						b.Fatal(err)
					}
					defer st.Close()
					run(func() (*bench.Client, error) { return bench.NewClient(st.Dial, st.ClientConfig(), false), nil })
				}
				report(b, res)
			})
		}
	}
}

// --- Table 2: asynchronous enclave calls ----------------------------------

// BenchmarkTable2_AsyncCalls compares synchronous (one hardware transition
// per call) and asynchronous (slot-array) enclave calls on Apache for
// growing content sizes. The paper reports 57-114% higher throughput with
// async calls.
func BenchmarkTable2_AsyncCalls(b *testing.B) {
	sizes := []struct {
		name string
		n    int
	}{{"0B", 0}, {"1KB", 1 << 10}, {"10KB", 10 << 10}, {"64KB", 64 << 10}}
	for _, cm := range []asyncall.Mode{asyncall.ModeSync, asyncall.ModeAsync} {
		cm := cm
		for _, size := range sizes {
			size := size
			b.Run(fmt.Sprintf("%s/size=%s", cm, size.name), func(b *testing.B) {
				// The paper's Apache runs dozens of worker threads; enclave
				// transition cost grows with the number of concurrently
				// transitioning threads (§6.8), which is what asynchronous
				// calls sidestep.
				st, err := bench.NewStaticStack(bench.StackOptions{
					Mode: bench.ModeProcess, Cost: benchCost(), CallMode: cm,
					Schedulers: 3, TasksPerScheduler: 16, MaxThreads: 48,
				}, size.n, false)
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				var res bench.Result
				for i := 0; i < b.N; i++ {
					var err error
					res, err = bench.Load{
						Clients:     16,
						Requests:    160,
						Warmup:      16,
						MakeClient:  func(int) *bench.Client { return st.NewClient(false) },
						MakeRequest: func(_, _ int) *httpparse.Request { return httpparse.NewRequest("GET", "/c", nil) },
						Validate:    status200,
					}.Run()
					if err != nil {
						b.Fatal(err)
					}
				}
				report(b, res)
			})
		}
	}
}

// --- Table 3: number of SGX threads ---------------------------------------

// BenchmarkTable3_SGXThreads sweeps the number of resident enclave scheduler
// threads at 48 lthread tasks each (1 KB content). The paper finds a peak at
// S=3 on 4 cores, with contention beyond.
func BenchmarkTable3_SGXThreads(b *testing.B) {
	for _, s := range []int{1, 2, 3, 4} {
		s := s
		b.Run(fmt.Sprintf("S=%d", s), func(b *testing.B) {
			st, err := bench.NewStaticStack(bench.StackOptions{
				Mode: bench.ModeProcess, Cost: benchCost(), CallMode: asyncall.ModeAsync,
				Schedulers: s, TasksPerScheduler: 48, AppSlots: 48, MaxThreads: s + 4,
			}, 1<<10, false)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			var res bench.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = bench.Load{
					Clients:     8,
					Requests:    96,
					Warmup:      8,
					MakeClient:  func(int) *bench.Client { return st.NewClient(false) },
					MakeRequest: func(_, _ int) *httpparse.Request { return httpparse.NewRequest("GET", "/c", nil) },
					Validate:    status200,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, res)
		})
	}
}

// --- Table 4: number of lthread tasks --------------------------------------

// BenchmarkTable4_LthreadTasks sweeps the lthread task count per scheduler
// at 3 schedulers. The paper finds throughput flat but latency improving
// with more tasks (fewer app-thread waits).
func BenchmarkTable4_LthreadTasks(b *testing.B) {
	for _, tasks := range []int{12, 24, 36, 48} {
		tasks := tasks
		b.Run(fmt.Sprintf("T=%d", tasks), func(b *testing.B) {
			st, err := bench.NewStaticStack(bench.StackOptions{
				Mode: bench.ModeProcess, Cost: benchCost(), CallMode: asyncall.ModeAsync,
				Schedulers: 3, TasksPerScheduler: tasks, AppSlots: 48, MaxThreads: 8,
			}, 1<<10, false)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			var res bench.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = bench.Load{
					Clients:     8,
					Requests:    96,
					Warmup:      8,
					MakeClient:  func(int) *bench.Client { return st.NewClient(false) },
					MakeRequest: func(_, _ int) *httpparse.Request { return httpparse.NewRequest("GET", "/c", nil) },
					Validate:    status200,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			report(b, res)
		})
	}
}

// --- §4.2: transition-reduction optimisations ------------------------------

// BenchmarkSec42_TransitionReduction measures Apache with the §4.2
// optimisations on and off, reporting the ecall/ocall counts per request
// alongside throughput. The paper reports 31% fewer ecalls, 49% fewer
// ocalls and up to 70% higher throughput.
func BenchmarkSec42_TransitionReduction(b *testing.B) {
	configs := []struct {
		name string
		opts Optimizations
	}{
		{"optimized", AllOptimizations()},
		{"unoptimized", Optimizations{}},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			opts := cfg.opts
			st, err := bench.NewStaticStack(bench.StackOptions{
				Mode: bench.ModeProcess, Cost: benchCost(), CallMode: asyncall.ModeSync,
				Opts: &opts, UseExData: true,
			}, 1<<10, false)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			var res bench.Result
			requests := 80
			for i := 0; i < b.N; i++ {
				st.Enclave.ResetStats()
				var err error
				res, err = bench.Load{
					Clients:     4,
					Requests:    requests,
					Warmup:      0,
					MakeClient:  func(int) *bench.Client { return st.NewClient(false) },
					MakeRequest: func(_, _ int) *httpparse.Request { return httpparse.NewRequest("GET", "/c", nil) },
					Validate:    status200,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			stats := st.Enclave.Stats()
			report(b, res)
			b.ReportMetric(float64(stats.Ecalls)/float64(requests), "ecalls/req")
			b.ReportMetric(float64(stats.Ocalls)/float64(requests), "ocalls/req")
		})
	}
}

// --- §6.5: log size --------------------------------------------------------

// BenchmarkSec65_LogSize measures the trimmed audit-log footprint per unit
// of service state: bytes per Git branch pointer, per ownCloud update and
// per Dropbox file (the paper reports 530, 124-131 and 64 bytes plus
// bookkeeping, respectively).
func BenchmarkSec65_LogSize(b *testing.B) {
	cases := []struct {
		name string
		mk   func() (*bench.LogFiller, error)
		unit string
	}{
		{"git", func() (*bench.LogFiller, error) { return bench.NewGitFiller(GitModule()) }, "B/pointer"},
		{"owncloud", func() (*bench.LogFiller, error) { return bench.NewOwnCloudFiller(OwnCloudModule()) }, "B/update"},
		{"dropbox", func() (*bench.LogFiller, error) { return bench.NewDropboxFiller(DropboxModule()) }, "B/file"},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var perUnit float64
			for i := 0; i < b.N; i++ {
				filler, err := c.mk()
				if err != nil {
					b.Fatal(err)
				}
				if err := filler.Fill(400); err != nil {
					b.Fatal(err)
				}
				if err := filler.Trim(); err != nil {
					b.Fatal(err)
				}
				bytes, units := bench.LogFootprint(filler.DB)
				if units > 0 {
					perUnit = float64(bytes) / float64(units)
				}
			}
			b.ReportMetric(perUnit, c.unit)
		})
	}
}

// BenchmarkTLSHandshake isolates the secure-channel handshake cost, the
// dominant term of the non-persistent-connection experiments.
func BenchmarkTLSHandshake(b *testing.B) {
	for _, mode := range []bench.SealMode{bench.ModeNative, bench.ModeProcess} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			st, err := bench.NewStaticStack(bench.StackOptions{
				Mode: mode, Cost: benchCost(), CallMode: asyncall.ModeAsync,
			}, 0, false)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				raw, err := st.Dial()
				if err != nil {
					b.Fatal(err)
				}
				conn, err := tlsterm.Connect(raw, st.ClientConfig())
				if err != nil {
					b.Fatal(err)
				}
				conn.Close()
			}
		})
	}
}

// BenchmarkSec68_TransitionCost measures the cost of one enclave transition
// as the number of concurrently calling threads grows, reproducing the
// motivation of §6.8: one ecall costs ~8,500 cycles with a single thread but
// ~170,000 cycles with 48 threads. The simulated cost model charges real CPU
// time with the same contention curve.
func BenchmarkSec68_TransitionCost(b *testing.B) {
	for _, threads := range []int{1, 8, 16, 32, 48} {
		threads := threads
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			encl, bridge, err := testutil.NewBridge(testutil.BridgeOptions{
				Mode: asyncall.ModeSync, MaxThreads: threads, Cost: benchCost(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer bridge.Close()
			const callsPerThread = 50
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				start := time.Now()
				var wg sync.WaitGroup
				for t := 0; t < threads; t++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for c := 0; c < callsPerThread; c++ {
							_ = encl.Ecall(func(*enclave.Ctx) error { return nil })
						}
					}()
				}
				wg.Wait()
				elapsed = time.Since(start)
			}
			// Each ecall pays two crossings; threads run them in parallel
			// goroutines, so wall time divided by total calls understates
			// per-call cost on multicore hosts but preserves the trend.
			perCall := float64(elapsed.Microseconds()) / float64(callsPerThread)
			b.ReportMetric(perCall, "µs/ecall-wall")
		})
	}
}
