package libseal

import (
	"bufio"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"libseal/internal/httpparse"
	"libseal/internal/netsim"
	"libseal/internal/services/apache"
	"libseal/internal/services/gitserver"
	"libseal/internal/testutil"
)

// driveGitWorkload runs a short Git session against a LibSEAL instance:
// two pushes, an injected rollback, a fetch, and an in-band check. It
// returns the violation names the instance reported.
func driveGitWorkload(t *testing.T, seal *LibSEAL, certs *testutil.CertEnv) []string {
	t.Helper()
	git := gitserver.NewServer()
	network := netsim.NewNetwork()
	listener, err := network.Listen("svc:443")
	if err != nil {
		t.Fatal(err)
	}
	server, err := apache.New(apache.Config{
		Terminator: seal.TLS().Terminator(),
		Handler:    git.Handler(),
		KeepAlive:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(listener)
	defer server.Close()

	raw, err := network.Dial("svc:443")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ConnectTLS(raw, certs.ClientConfig("svc"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	do := func(req *httpparse.Request) {
		t.Helper()
		if _, err := conn.Write(req.Bytes()); err != nil {
			t.Fatal(err)
		}
		if _, err := httpparse.ReadResponse(br); err != nil {
			t.Fatal(err)
		}
	}
	do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte("create main c1")))
	do(httpparse.NewRequest("POST", "/git/x/git-receive-pack", []byte("update main c2")))
	git.InjectRollback("x", "main", "c1")
	do(httpparse.NewRequest("GET", "/git/x/info/refs", nil))
	req := httpparse.NewRequest("GET", "/git/x/info/refs", nil)
	req.Header.Set(CheckHeader, "1")
	do(req)

	var names []string
	for _, v := range seal.Violations() {
		names = append(names, v.Invariant)
	}
	return names
}

// TestOpenOptionsEndToEnd builds an instance through the functional-options
// constructor with the full plumbing — sharded disk audit, counter group
// with retry policy and circuit breaker, admission control, batching,
// checks, violation handler — drives a real workload, and verifies the
// sharded set through the unified Verify entry point.
func TestOpenOptionsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	platform := NewPlatform()
	encl, err := platform.Launch(EnclaveConfig{Code: []byte("open-options-test"), MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := NewBridge(encl, BridgeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	certs, err := testutil.NewCertEnv("svc")
	if err != nil {
		t.Fatal(err)
	}
	group, err := NewCounterGroup(1)
	if err != nil {
		t.Fatal(err)
	}

	policy := DefaultRetryPolicy()
	policy.Timeout = 250 * time.Millisecond
	var handled []string
	seal, err := Open(bridge,
		WithModule(GitModule()),
		WithTLS(TLSConfig{Cert: certs.Cert, Key: certs.Key, Opts: AllOptimizations()}),
		WithAuditDisk(dir),
		WithAuditShards(2),
		WithManifestInterval(50*time.Millisecond),
		WithCounterGroup(group),
		WithRetryPolicy(policy),
		WithBreaker(BreakerConfig{Threshold: 5, Cooldown: time.Second}),
		WithAdmission(256, 500*time.Millisecond),
		WithBatching(16, 200*time.Microsecond),
		WithAnchorTimeout(2*time.Second),
		WithChecks(10, 0, time.Millisecond),
		WithViolationHandler(func(name string, _ *QueryResult) { handled = append(handled, name) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer seal.Close()

	violations := driveGitWorkload(t, seal, certs)
	if len(violations) == 0 || violations[0] != "git-soundness" {
		t.Fatalf("violations = %v", violations)
	}
	if len(handled) == 0 || handled[0] != "git-soundness" {
		t.Fatalf("WithViolationHandler saw %v", handled)
	}
	if got := seal.Log().Shards(); got != 2 {
		t.Fatalf("shards = %d, want 2", got)
	}
	if err := seal.Close(); err != nil {
		t.Fatal(err)
	}

	// The unified entry point auto-detects the sharded set in the directory.
	res, err := Verify(dir, VerifyStreamOptions{
		VerifyOptions: VerifyOptions{Pub: encl.PublicKey(), Protector: group, Name: "git"},
	})
	if err != nil {
		t.Fatalf("Verify(dir): %v", err)
	}
	if !res.Sharded || len(res.Shards) != 2 {
		t.Fatalf("Sharded=%v shards=%d", res.Sharded, len(res.Shards))
	}
	if res.TotalEntries == 0 || res.Manifests == 0 {
		t.Fatalf("entries=%d manifests=%d", res.TotalEntries, res.Manifests)
	}
}

// TestOpenMatchesNew checks the facade contract: Open assembles the same
// instance New does from an equivalent Config, observed through identical
// behaviour on the same workload and identically-verifiable logs.
func TestOpenMatchesNew(t *testing.T) {
	type build func(t *testing.T, bridge *Bridge, certs *testutil.CertEnv, dir string, group *CounterGroup) (*LibSEAL, error)
	builds := map[string]build{
		"new": func(t *testing.T, bridge *Bridge, certs *testutil.CertEnv, dir string, group *CounterGroup) (*LibSEAL, error) {
			return New(bridge, Config{
				TLS:              TLSConfig{Cert: certs.Cert, Key: certs.Key, Opts: AllOptimizations()},
				Module:           GitModule(),
				AuditMode:        AuditDisk,
				AuditDir:         dir,
				Protector:        group,
				CheckEvery:       10,
				CheckMinInterval: time.Millisecond,
			})
		},
		"open": func(t *testing.T, bridge *Bridge, certs *testutil.CertEnv, dir string, group *CounterGroup) (*LibSEAL, error) {
			return Open(bridge,
				WithModule(GitModule()),
				WithTLS(TLSConfig{Cert: certs.Cert, Key: certs.Key, Opts: AllOptimizations()}),
				WithAuditDisk(dir),
				WithCounterGroup(group),
				WithChecks(10, 0, time.Millisecond),
			)
		},
	}
	results := map[string]*Report{}
	for name, mk := range builds {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			platform := NewPlatform()
			encl, err := platform.Launch(EnclaveConfig{Code: []byte("facade-equiv"), MaxThreads: 8})
			if err != nil {
				t.Fatal(err)
			}
			bridge, err := NewBridge(encl, BridgeConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer bridge.Close()
			certs, err := testutil.NewCertEnv("svc")
			if err != nil {
				t.Fatal(err)
			}
			group, err := NewCounterGroup(1)
			if err != nil {
				t.Fatal(err)
			}
			seal, err := mk(t, bridge, certs, dir, group)
			if err != nil {
				t.Fatal(err)
			}
			violations := driveGitWorkload(t, seal, certs)
			if len(violations) == 0 || violations[0] != "git-soundness" {
				t.Fatalf("violations = %v", violations)
			}
			if err := seal.Close(); err != nil {
				t.Fatal(err)
			}
			res, err := Verify(dir, VerifyStreamOptions{
				VerifyOptions: VerifyOptions{Pub: encl.PublicKey(), Protector: group, Name: "git"},
			})
			if err != nil {
				t.Fatalf("Verify: %v", err)
			}
			results[name] = res
		})
	}
	a, b := results["new"], results["open"]
	if a == nil || b == nil {
		t.Fatal("missing results")
	}
	if a.TotalEntries != b.TotalEntries || a.Sharded != b.Sharded {
		t.Fatalf("diverged: new %d entries (sharded=%v), open %d entries (sharded=%v)",
			a.TotalEntries, a.Sharded, b.TotalEntries, b.Sharded)
	}
	for table, n := range a.Tables {
		if b.Tables[table] != n {
			t.Fatalf("table %s: new %d, open %d", table, n, b.Tables[table])
		}
	}
}

// TestOpenCounterFaults checks WithCounterFaults mints a working group, and
// that a memory-only Open needs nothing beyond module and TLS identity.
func TestOpenCounterFaults(t *testing.T) {
	platform := NewPlatform()
	encl, err := platform.Launch(EnclaveConfig{Code: []byte("open-faults"), MaxThreads: 8})
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := NewBridge(encl, BridgeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	certs, err := testutil.NewCertEnv("svc")
	if err != nil {
		t.Fatal(err)
	}
	tls := TLSConfig{Cert: certs.Cert, Key: certs.Key}
	seal, err := Open(bridge,
		WithModule(GitModule()),
		WithTLS(tls),
		WithAuditDisk(t.TempDir()),
		WithCounterFaults(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := seal.Close(); err != nil {
		t.Fatal(err)
	}

	bridge2, err := NewBridge(encl, BridgeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer bridge2.Close()
	mem, err := Open(bridge2, WithModule(GitModule()), WithTLS(tls))
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenCheckAsyncAndIndexOptions drives the same Git workload through
// instances built with WithCheckAsync and with WithIndexes(false): both
// must detect the rollback — background snapshot checking and the
// index-ablation executor change where and how checks run, never what they
// find.
func TestOpenCheckAsyncAndIndexOptions(t *testing.T) {
	for _, opt := range []struct {
		name  string
		extra Option
	}{
		{"check-async", WithCheckAsync()},
		{"no-indexes", WithIndexes(false)},
	} {
		t.Run(opt.name, func(t *testing.T) {
			platform := NewPlatform()
			encl, err := platform.Launch(EnclaveConfig{Code: []byte("open-" + opt.name), MaxThreads: 8})
			if err != nil {
				t.Fatal(err)
			}
			bridge, err := NewBridge(encl, BridgeConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer bridge.Close()
			certs, err := testutil.NewCertEnv("svc")
			if err != nil {
				t.Fatal(err)
			}
			seal, err := Open(bridge,
				WithModule(GitModule()),
				WithTLS(TLSConfig{Cert: certs.Cert, Key: certs.Key, Opts: AllOptimizations()}),
				WithChecks(10, 0, time.Millisecond),
				opt.extra,
			)
			if err != nil {
				t.Fatal(err)
			}
			defer seal.Close()
			violations := driveGitWorkload(t, seal, certs)
			if len(violations) == 0 || violations[0] != "git-soundness" {
				t.Fatalf("violations = %v", violations)
			}
			if err := seal.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// countingProtector is a RollbackProtector stub that records use, so tests
// can observe WHICH protector Open actually installed.
type countingProtector struct {
	increments atomic.Int64
	reads      atomic.Int64
	counter    atomic.Uint64
}

func (p *countingProtector) Increment(name string) (uint64, error) {
	p.increments.Add(1)
	return p.counter.Add(1), nil
}

func (p *countingProtector) Read(name string) (uint64, error) {
	p.reads.Add(1)
	return p.counter.Load(), nil
}

// TestOpenProtectorResolutionOrder pins Open's documented resolution order
// for the counter plumbing: an explicit WithProtector wins over the
// WithCounterGroup / WithCounterFaults / WithBreaker path regardless of
// argument position, because the resolution order is fixed, not positional.
func TestOpenProtectorResolutionOrder(t *testing.T) {
	certs, err := testutil.NewCertEnv("svc")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		order func(stub *countingProtector, group *CounterGroup) []Option
	}{
		{"protector-first", func(stub *countingProtector, group *CounterGroup) []Option {
			return []Option{WithProtector(stub), WithCounterGroup(group), WithBreaker(BreakerConfig{})}
		}},
		{"protector-last", func(stub *countingProtector, group *CounterGroup) []Option {
			return []Option{WithCounterGroup(group), WithBreaker(BreakerConfig{}), WithProtector(stub)}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			platform := NewPlatform()
			encl, err := platform.Launch(EnclaveConfig{Code: []byte("open-order"), MaxThreads: 8})
			if err != nil {
				t.Fatal(err)
			}
			bridge, err := NewBridge(encl, BridgeConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer bridge.Close()
			group, err := NewCounterGroup(1)
			if err != nil {
				t.Fatal(err)
			}
			stub := &countingProtector{}
			opts := append([]Option{
				WithModule(GitModule()),
				WithTLS(TLSConfig{Cert: certs.Cert, Key: certs.Key}),
				WithAuditDisk(t.TempDir()),
			}, tc.order(stub, group)...)
			seal, err := Open(bridge, opts...)
			if err != nil {
				t.Fatal(err)
			}
			violations := driveGitWorkload(t, seal, certs)
			if len(violations) == 0 {
				t.Fatalf("violations = %v", violations)
			}
			if err := seal.Close(); err != nil {
				t.Fatal(err)
			}
			if stub.increments.Load() == 0 && stub.reads.Load() == 0 {
				t.Fatal("explicit WithProtector was never used: counter-group plumbing won the resolution")
			}
			// The group must NOT have been anchored to: its counters stay
			// untouched when an explicit protector is present.
			if n, err := group.Read("git"); err == nil && n != 0 {
				t.Fatalf("counter group was used (counter=%d) despite explicit WithProtector", n)
			}
		})
	}
}

// TestModuleNamesSorted pins the documented contract that ModuleNames
// returns sorted names (the facade promises a stable CLI-friendly order).
func TestModuleNamesSorted(t *testing.T) {
	names := ModuleNames()
	if len(names) == 0 {
		t.Fatal("no modules registered")
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("ModuleNames not sorted: %v", names)
	}
	// Stability across calls (fresh slice each time, same order).
	again := ModuleNames()
	for i := range names {
		if names[i] != again[i] {
			t.Fatalf("ModuleNames unstable: %v vs %v", names, again)
		}
	}
}
