GO ?= go

.PHONY: all build test check soak mirror-soak bench bench-json bench-compare bench-verify bench-shards bench-check bench-mirror fuzz-smoke clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full gate: static checks plus the whole suite (chaos soak included)
# under the race detector. Use `go test -short ./...` to skip the
# long-running determinism replay.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Resilience soak (DESIGN.md §12): rolling amnesic counter-node restarts,
# the circuit-breaker lifecycle and overload shedding, under -race.
soak:
	$(GO) test -race -count=1 -run 'TestChaosRollingRestart|TestChaosBreaker|TestChaosOverload' -v .

# Mirror soak (DESIGN.md §16): a live mirror following a sharded server
# through repeated server-side link drops plus the facade resume-across-
# restart path, under -race. The mirror must reconnect, resume from its
# checkpoint without cold rescans, and end in full agreement with the
# offline verifier.
mirror-soak:
	$(GO) test -race -count=3 -run 'TestChaosMirrorLinkDrops|TestMirrorFacadeResumeAcrossRestart' -v .
	$(GO) test -race -count=1 -run 'TestMirror|TestFeed' ./internal/audit/mirror/

bench:
	$(GO) test -bench=. -benchmem -benchtime=2x ./...

# Machine-readable bench: sweeps the audited Git workload over
# {batch off/on} x {sync/async bridge} x {1,4,16 clients}, verifies every
# log produced, and writes per-run throughput, append latency quantiles and
# fsync/signature/counter costs per request.
bench-json:
	$(GO) run ./cmd/libseal-bench -json BENCH_pr4.json

# Same sweep, but quick (smaller request budget): prints the batching
# off/on delta table per bridge mode and client count.
bench-compare:
	$(GO) run ./cmd/libseal-bench -json /tmp/libseal-bench-compare.json -quick

# Parallel-verification sweep (DESIGN.md §13): sequential baseline vs the
# segmented pipeline at 1/2/4/8 workers, cold and resumed from a mid-log
# checkpoint, over a >=1M-entry batched synthetic log.
bench-verify:
	$(GO) run ./cmd/libseal-bench -verify-json BENCH_pr7.json

# Sharded-append sweep (DESIGN.md §14): aggregate append throughput at
# 1/2/4/8 audit-log shards under 16 clients over a 500us-latency counter
# quorum, each run strictly re-verified including epoch-manifest replay.
bench-shards:
	$(GO) run ./cmd/libseal-bench -shards-json BENCH_pr8.json

# Snapshot-check sweep (DESIGN.md §15): full-check latency over a growing
# multi-repo Git audit database with hash indexes on vs off, plus audited
# append throughput with no / synchronous / asynchronous periodic checks,
# each disk run strictly re-verified.
bench-check:
	$(GO) run ./cmd/libseal-bench -check-json BENCH_pr9.json

# Live-mirror sweep (DESIGN.md §16): append throughput with and without one
# attached mirror (acceptance: mirrored >= 0.95x unmirrored), the mirror's
# catch-up time, and truncate-to-verdict rollback detection latency through
# a reconnect.
bench-mirror:
	$(GO) run ./cmd/libseal-bench -mirror-json BENCH_pr10.json

# Short fuzzing pass over the verifier, the entry codec and the HTTP
# parser — the same smoke CI runs. Seed corpora live under testdata/fuzz.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzVerifyReader -fuzztime=20s ./internal/audit/
	$(GO) test -run=^$$ -fuzz=FuzzCodecRoundTrip -fuzztime=20s ./internal/audit/
	$(GO) test -run=^$$ -fuzz=FuzzHTTPParse -fuzztime=20s ./internal/httpparse/

clean:
	$(GO) clean ./...
