GO ?= go

.PHONY: all build test check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full gate: static checks plus the whole suite (chaos soak included)
# under the race detector. Use `go test -short ./...` to skip the
# long-running determinism replay.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=2x ./...

clean:
	$(GO) clean ./...
