GO ?= go

.PHONY: all build test check soak bench bench-json bench-compare clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full gate: static checks plus the whole suite (chaos soak included)
# under the race detector. Use `go test -short ./...` to skip the
# long-running determinism replay.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# Resilience soak (DESIGN.md §12): rolling amnesic counter-node restarts,
# the circuit-breaker lifecycle and overload shedding, under -race.
soak:
	$(GO) test -race -count=1 -run 'TestChaosRollingRestart|TestChaosBreaker|TestChaosOverload' -v .

bench:
	$(GO) test -bench=. -benchmem -benchtime=2x ./...

# Machine-readable bench: sweeps the audited Git workload over
# {batch off/on} x {sync/async bridge} x {1,4,16 clients}, verifies every
# log produced, and writes per-run throughput, append latency quantiles and
# fsync/signature/counter costs per request.
bench-json:
	$(GO) run ./cmd/libseal-bench -json BENCH_pr4.json

# Same sweep, but quick (smaller request budget): prints the batching
# off/on delta table per bridge mode and client count.
bench-compare:
	$(GO) run ./cmd/libseal-bench -json /tmp/libseal-bench-compare.json -quick

clean:
	$(GO) clean ./...
