GO ?= go

.PHONY: all build test check bench bench-json clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full gate: static checks plus the whole suite (chaos soak included)
# under the race detector. Use `go test -short ./...` to skip the
# long-running determinism replay.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=2x ./...

# Machine-readable bench: runs the audited Git workload with telemetry off
# and on, and writes the metric snapshot plus the overhead comparison.
bench-json:
	$(GO) run ./cmd/libseal-bench -json BENCH_pr3.json

clean:
	$(GO) clean ./...
