module libseal

go 1.22
